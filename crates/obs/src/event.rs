//! Typed scheduler trace events.
//!
//! One variant per decision kind named in the instrumentation contract:
//! task selection (with the priority key that won), placement probes and
//! commits (with hole-vs-append), UNC cluster merges, APN message routing,
//! BSA trial verdicts (*which* bound cut a rejected trial), branch-and-
//! bound expansion/pruning (per prune bound), and incremental-engine
//! cone-repair extents.
//!
//! Events are plain `Copy` data carrying **no timestamps**: the logical
//! step stamp is the event's position in the sink's stream. All payload
//! fields are ids and schedule times (graph time units), both of which are
//! deterministic, so a serialized trace is byte-identical across runs and
//! thread counts.

/// Why a BSA migration trial ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialVerdict {
    /// Trial replay completed and improved the incumbent key; it became
    /// the migration candidate.
    Accepted,
    /// Trial replay completed but did not beat the incumbent key.
    Dominated,
    /// Cut up front: the probe-ahead lower bound on the watched task's
    /// start already met the cutoff.
    CutProbeAhead,
    /// Cut by the remaining-row-work makespan bound (up-front or per-op).
    CutRowWork,
    /// Cut because a replayed task finished past `max_finish`.
    CutFinish,
    /// Cut because the watched task started past `max_start`.
    CutWatchStart,
    /// Cut by the tie-cap re-check (equal-start tiebreak cannot win).
    CutTieCap,
    /// Cut by the destination-processor tail bound or the periodic
    /// probe-ahead re-check.
    CutTargetTail,
    /// Replay deadlocked (the trial order is infeasible).
    Deadlock,
}

impl TrialVerdict {
    pub fn name(self) -> &'static str {
        match self {
            TrialVerdict::Accepted => "accepted",
            TrialVerdict::Dominated => "dominated",
            TrialVerdict::CutProbeAhead => "cut-probe-ahead",
            TrialVerdict::CutRowWork => "cut-row-work",
            TrialVerdict::CutFinish => "cut-finish",
            TrialVerdict::CutWatchStart => "cut-watch-start",
            TrialVerdict::CutTieCap => "cut-tie-cap",
            TrialVerdict::CutTargetTail => "cut-target-tail",
            TrialVerdict::Deadlock => "deadlock",
        }
    }
}

/// Which test pruned a branch-and-bound node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneBound {
    /// `lower_bound(state) >= incumbent` — the bound test.
    LowerBound,
    /// The state's canonical signature was already explored.
    Duplicate,
}

impl PruneBound {
    pub fn name(self) -> &'static str {
        match self {
            PruneBound::LowerBound => "lower-bound",
            PruneBound::Duplicate => "duplicate",
        }
    }
}

/// One scheduler decision. See the module docs for the determinism
/// contract; see [`Event::name`]/[`Event::args`] for the stable
/// serialization used by the Chrome-trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A task won the selection step. `key`/`tie` are the (algorithm-
    /// specific) primary priority and tie-break values it won with.
    TaskSelected { task: u32, key: u64, tie: u64 },
    /// A candidate processor was probed for a start slot.
    PlacementProbed { task: u32, proc: u32, start: u64 },
    /// A placement was committed. `hole` is true when the slot was an
    /// insertion before the processor's tail (vs a plain append).
    PlacementCommitted {
        task: u32,
        proc: u32,
        start: u64,
        finish: u64,
        hole: bool,
    },
    /// UNC: a task opened a fresh cluster.
    ClusterOpened { task: u32, cluster: u32 },
    /// UNC: a task merged into an existing cluster at `start`.
    ClusterMerged { task: u32, cluster: u32, start: u64 },
    /// UNC: the best merge candidate was rejected; `dsrw` marks a
    /// DSRW-guard rejection (merge would delay the dominant sequence)
    /// as opposed to a plain no-gain rejection.
    MergeRejected { task: u32, cluster: u32, dsrw: bool },
    /// APN: a message from `src` (on processor `from`) to `dst` (on
    /// processor `to`) was committed onto the network, arriving at
    /// `arrival`.
    MessageRouted {
        src: u32,
        dst: u32,
        from: u32,
        to: u32,
        arrival: u64,
    },
    /// BSA: one migration trial of `task` from processor `from` to
    /// `to` ended with `verdict`.
    BsaTrial {
        task: u32,
        from: u32,
        to: u32,
        verdict: TrialVerdict,
    },
    /// Incremental dyn-levels engine: placing `task` repaired `fwd`
    /// nodes forward (AEST cone) and `bwd` nodes backward (ALST cone).
    ConeRepaired { task: u32, fwd: u32, bwd: u32 },
    /// Branch-and-bound expanded a node at `depth` placed tasks.
    BnbExpanded { depth: u32 },
    /// Branch-and-bound pruned a node at `depth` by `bound`.
    BnbPruned { depth: u32, bound: PruneBound },
}

use crate::chrome::ArgVal;

impl Event {
    /// Stable event name for serialized traces.
    pub fn name(&self) -> &'static str {
        match self {
            Event::TaskSelected { .. } => "task_selected",
            Event::PlacementProbed { .. } => "placement_probed",
            Event::PlacementCommitted { .. } => "placement_committed",
            Event::ClusterOpened { .. } => "cluster_opened",
            Event::ClusterMerged { .. } => "cluster_merged",
            Event::MergeRejected { .. } => "merge_rejected",
            Event::MessageRouted { .. } => "message_routed",
            Event::BsaTrial { .. } => "bsa_trial",
            Event::ConeRepaired { .. } => "cone_repaired",
            Event::BnbExpanded { .. } => "bnb_expanded",
            Event::BnbPruned { .. } => "bnb_pruned",
        }
    }

    /// Stable `(key, value)` argument list for serialized traces, in a
    /// fixed order per variant.
    pub fn args(&self) -> Vec<(&'static str, ArgVal)> {
        match *self {
            Event::TaskSelected { task, key, tie } => vec![
                ("task", ArgVal::U(task as u64)),
                ("key", ArgVal::U(key)),
                ("tie", ArgVal::U(tie)),
            ],
            Event::PlacementProbed { task, proc, start } => vec![
                ("task", ArgVal::U(task as u64)),
                ("proc", ArgVal::U(proc as u64)),
                ("start", ArgVal::U(start)),
            ],
            Event::PlacementCommitted {
                task,
                proc,
                start,
                finish,
                hole,
            } => vec![
                ("task", ArgVal::U(task as u64)),
                ("proc", ArgVal::U(proc as u64)),
                ("start", ArgVal::U(start)),
                ("finish", ArgVal::U(finish)),
                ("hole", ArgVal::B(hole)),
            ],
            Event::ClusterOpened { task, cluster } => vec![
                ("task", ArgVal::U(task as u64)),
                ("cluster", ArgVal::U(cluster as u64)),
            ],
            Event::ClusterMerged {
                task,
                cluster,
                start,
            } => vec![
                ("task", ArgVal::U(task as u64)),
                ("cluster", ArgVal::U(cluster as u64)),
                ("start", ArgVal::U(start)),
            ],
            Event::MergeRejected {
                task,
                cluster,
                dsrw,
            } => vec![
                ("task", ArgVal::U(task as u64)),
                ("cluster", ArgVal::U(cluster as u64)),
                ("dsrw", ArgVal::B(dsrw)),
            ],
            Event::MessageRouted {
                src,
                dst,
                from,
                to,
                arrival,
            } => vec![
                ("src", ArgVal::U(src as u64)),
                ("dst", ArgVal::U(dst as u64)),
                ("from", ArgVal::U(from as u64)),
                ("to", ArgVal::U(to as u64)),
                ("arrival", ArgVal::U(arrival)),
            ],
            Event::BsaTrial {
                task,
                from,
                to,
                verdict,
            } => vec![
                ("task", ArgVal::U(task as u64)),
                ("from", ArgVal::U(from as u64)),
                ("to", ArgVal::U(to as u64)),
                ("verdict", ArgVal::S(verdict.name())),
            ],
            Event::ConeRepaired { task, fwd, bwd } => vec![
                ("task", ArgVal::U(task as u64)),
                ("fwd", ArgVal::U(fwd as u64)),
                ("bwd", ArgVal::U(bwd as u64)),
            ],
            Event::BnbExpanded { depth } => vec![("depth", ArgVal::U(depth as u64))],
            Event::BnbPruned { depth, bound } => vec![
                ("depth", ArgVal::U(depth as u64)),
                ("bound", ArgVal::S(bound.name())),
            ],
        }
    }
}
