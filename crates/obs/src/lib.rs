#![forbid(unsafe_code)]
//! `dagsched-obs` — observability primitives for the scheduler stack.
//!
//! Bottom-of-stack and std-only (like `dagsched-ws`): every other crate may
//! depend on this one, and this one depends on nothing. Three layers:
//!
//! 1. **Event tracing** ([`Sink`], [`Event`]) — schedulers emit typed
//!    per-decision events (task selected, placement committed, cluster
//!    merged, message routed, BSA trial verdict, B&B expand/prune, cone
//!    repair extent). The sink is a *generic* parameter on each scheduler's
//!    internal run function, so with the [`NullSink`] — whose `enabled()`
//!    is an `#[inline(always)] false` — the event construction is dead code
//!    the optimizer removes entirely. Events carry **logical step stamps
//!    only** (the sink's own event index), never wall-clock time, so a
//!    recorded trace is byte-deterministic across runs and thread counts.
//! 2. **Counter/histogram registry** ([`registry::Registry`]) — a fixed
//!    enum of process-wide metrics backed by sharded relaxed atomics plus
//!    fixed-bucket log₂ histograms ([`hist::LogHist`]). Hot paths
//!    accumulate in plain locals and flush once per run/teardown; the
//!    registry itself is only touched at flush points or for coarse
//!    (per-placement and slower) happenings.
//! 3. **Span profiling** ([`span`]) — scoped wall-clock timers for the
//!    `taskbench profile` front door. Off by default (one atomic load per
//!    scope); when enabled they feed a flat self-time table and a
//!    Chrome-trace export ([`chrome::ChromeTrace`], loadable in
//!    `chrome://tracing` or Perfetto). Wall-clock appears *only* here —
//!    profile output is explicitly non-deterministic and never CI-diffed.

pub mod chrome;
pub mod env;
pub mod event;
pub mod hist;
pub mod registry;
pub mod span;

pub use chrome::{ArgVal, ChromeTrace};
pub use event::{Event, PruneBound, TrialVerdict};
pub use hist::LogHist;
pub use registry::{global, Counter, HistId, Metric, Registry, Snapshot};

/// Receiver for scheduler trace events.
///
/// Implementations must keep `enabled()` trivially inlinable: instrumented
/// code guards every emission with it (via [`emit!`]) so that payload
/// construction is skipped — and for [`NullSink`], statically removed —
/// when tracing is off.
pub trait Sink {
    /// Whether events should be constructed and delivered at all.
    fn enabled(&self) -> bool;
    /// Deliver one event. The sink assigns the logical step stamp
    /// (its own running event count); callers never pass time.
    fn emit(&mut self, ev: Event);
}

/// Forwarding impl so a `&mut dyn Sink` (the object-safe
/// `schedule_traced` entry point) can flow into the monomorphized
/// `run<S: Sink>` internals.
impl<S: Sink + ?Sized> Sink for &mut S {
    #[inline(always)]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    #[inline(always)]
    fn emit(&mut self, ev: Event) {
        (**self).emit(ev)
    }
}

/// The disabled sink: `enabled()` is a compile-time `false`, so every
/// `emit!` guarded by it is dead code after monomorphization. This is the
/// "zero-cost" in zero-cost tracing; `perf_baseline`'s `trace_overhead`
/// section holds the instrumented hot paths to ≤2% of their retained
/// pre-instrumentation copies under this sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn emit(&mut self, _ev: Event) {}
}

/// In-memory sink: records every event in order. The index of an event in
/// [`MemSink::events`] *is* its logical step stamp.
#[derive(Debug, Default)]
pub struct MemSink {
    pub events: Vec<Event>,
}

impl MemSink {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sink for MemSink {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }
    #[inline]
    fn emit(&mut self, ev: Event) {
        self.events.push(ev);
    }
}

/// Guarded event emission: evaluates the event expression only when the
/// sink is enabled. With [`NullSink`] the whole statement compiles away.
///
/// ```
/// use dagsched_obs::{emit, Event, MemSink, NullSink, Sink};
/// let mut mem = MemSink::new();
/// emit!(&mut mem, Event::BnbExpanded { depth: 3 });
/// assert_eq!(mem.events.len(), 1);
/// let mut off = NullSink;
/// emit!(&mut off, Event::BnbExpanded { depth: panic!("never built") });
/// ```
#[macro_export]
macro_rules! emit {
    ($sink:expr, $ev:expr) => {
        if $crate::Sink::enabled(&*$sink) {
            $crate::Sink::emit($sink, $ev);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_never_evaluates_payload() {
        let mut s = NullSink;
        let mut evaluated = false;
        emit!(&mut s, {
            evaluated = true;
            Event::BnbExpanded { depth: 0 }
        });
        assert!(!evaluated);
    }

    #[test]
    fn mem_sink_records_in_order() {
        let mut s = MemSink::new();
        emit!(&mut s, Event::BnbExpanded { depth: 1 });
        emit!(&mut s, Event::BnbExpanded { depth: 2 });
        assert_eq!(
            s.events,
            vec![
                Event::BnbExpanded { depth: 1 },
                Event::BnbExpanded { depth: 2 }
            ]
        );
    }

    #[test]
    fn dyn_sink_forwards_through_the_blanket_impl() {
        fn run<S: Sink>(sink: &mut S) {
            emit!(sink, Event::BnbExpanded { depth: 7 });
        }
        let mut mem = MemSink::new();
        {
            let mut dyn_sink: &mut dyn Sink = &mut mem;
            run(&mut dyn_sink);
        }
        assert_eq!(mem.events.len(), 1);
    }
}
