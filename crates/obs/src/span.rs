//! Scoped wall-clock span timers for the `taskbench profile` front door.
//!
//! Disabled by default: [`span`] costs one atomic load and returns an
//! inert guard. When [`enable`]d, spans nest via a thread-local stack and
//! record `(name, depth, start, total, self)` tuples; [`drain`] takes the
//! calling thread's records for rendering as a flat top-N self-time table
//! ([`self_time_table`]) or a Chrome-trace timeline.
//!
//! This module is the **only** place in the workspace where wall-clock
//! time enters observability output; see the crate docs for the
//! determinism contract.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn span recording on (process-wide) for the calling thread's
/// subsequently opened spans.
pub fn enable() {
    // relaxed-ok: a lone on/off flag guarding thread-local state; no
    // cross-thread data is published through it.
    ENABLED.store(true, Relaxed);
}

/// Turn span recording off.
pub fn disable() {
    // relaxed-ok: same lone-flag contract as enable().
    ENABLED.store(false, Relaxed);
}

/// One closed span, times in nanoseconds relative to the thread's first
/// recorded span.
#[derive(Debug, Clone, Copy)]
pub struct SpanRec {
    pub name: &'static str,
    /// Nesting depth at open time (0 = top level).
    pub depth: u16,
    pub start_ns: u64,
    /// Inclusive duration.
    pub total_ns: u64,
    /// Duration minus time spent in child spans.
    pub self_ns: u64,
}

struct OpenSpan {
    name: &'static str,
    depth: u16,
    start: Instant,
    child_ns: u64,
}

#[derive(Default)]
struct ProfState {
    epoch: Option<Instant>,
    stack: Vec<OpenSpan>,
    recs: Vec<SpanRec>,
}

thread_local! {
    static PROF: RefCell<ProfState> = RefCell::default();
}

/// RAII guard for one timed scope; records on drop when profiling was
/// enabled at open time.
pub struct Span {
    active: bool,
}

/// Open a timed scope. Inert (a single atomic load) unless [`enable`]d.
pub fn span(name: &'static str) -> Span {
    // relaxed-ok: reading the lone on/off flag; spans it gates are
    // recorded into thread-local state only.
    if !ENABLED.load(Relaxed) {
        return Span { active: false };
    }
    PROF.with(|p| {
        let mut p = p.borrow_mut();
        let now = Instant::now();
        p.epoch.get_or_insert(now);
        let depth = p.stack.len() as u16;
        p.stack.push(OpenSpan {
            name,
            depth,
            start: now,
            child_ns: 0,
        });
    });
    Span { active: true }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        PROF.with(|p| {
            let mut p = p.borrow_mut();
            let Some(open) = p.stack.pop() else { return };
            let total_ns = open.start.elapsed().as_nanos() as u64;
            let epoch = p.epoch.expect("epoch set when first span opened");
            let start_ns = open.start.duration_since(epoch).as_nanos() as u64;
            if let Some(parent) = p.stack.last_mut() {
                parent.child_ns += total_ns;
            }
            p.recs.push(SpanRec {
                name: open.name,
                depth: open.depth,
                start_ns,
                total_ns,
                self_ns: total_ns.saturating_sub(open.child_ns),
            });
        });
    }
}

/// Take (and clear) the calling thread's closed spans, in close order.
pub fn drain() -> Vec<SpanRec> {
    PROF.with(|p| {
        let mut p = p.borrow_mut();
        p.epoch = None;
        std::mem::take(&mut p.recs)
    })
}

/// One row of the flat profile: a span name aggregated over all its
/// occurrences.
#[derive(Debug, Clone, Copy)]
pub struct SelfTime {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
    pub self_ns: u64,
}

/// Aggregate records by name and sort by descending self time (name as
/// the tie-break so equal-self rows render stably).
pub fn self_time_table(recs: &[SpanRec]) -> Vec<SelfTime> {
    let mut rows: Vec<SelfTime> = Vec::new();
    for r in recs {
        match rows.iter_mut().find(|row| row.name == r.name) {
            Some(row) => {
                row.count += 1;
                row.total_ns += r.total_ns;
                row.self_ns += r.self_ns;
            }
            None => rows.push(SelfTime {
                name: r.name,
                count: 1,
                total_ns: r.total_ns,
                self_ns: r.self_ns,
            }),
        }
    }
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        disable();
        drain();
        {
            let _s = span("outer");
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn nested_spans_attribute_self_time() {
        enable();
        drain();
        {
            let _a = span("outer");
            {
                let _b = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        disable();
        let recs = drain();
        assert_eq!(recs.len(), 2);
        // Close order: inner first.
        assert_eq!(recs[0].name, "inner");
        assert_eq!(recs[0].depth, 1);
        assert_eq!(recs[1].name, "outer");
        assert_eq!(recs[1].depth, 0);
        assert!(recs[1].total_ns >= recs[0].total_ns);
        assert!(recs[1].self_ns <= recs[1].total_ns - recs[0].total_ns);
        let table = self_time_table(&recs);
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].name, "inner", "inner dominates self time");
    }
}
