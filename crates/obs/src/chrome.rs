//! Chrome Trace Event Format writer.
//!
//! Emits the JSON object form (`{"traceEvents": [...]}`) accepted by
//! `chrome://tracing` and Perfetto. Only the event kinds this workspace
//! needs are supported: metadata thread names, complete (`"X"`) slices and
//! instant (`"i"`) events. Output is fully deterministic — fixed field
//! order, integer timestamps, no floats — so a trace built from logical
//! step stamps diffs byte-for-byte across runs.

/// A typed argument value for an event's `args` object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgVal {
    U(u64),
    S(&'static str),
    B(bool),
}

/// Incremental trace builder. Events appear in the output in emission
/// order; viewers sort by timestamp themselves.
pub struct ChromeTrace {
    buf: String,
    any: bool,
}

fn push_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\t' => buf.push_str("\\t"),
            '\r' => buf.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

fn push_args(buf: &mut String, args: &[(&str, ArgVal)]) {
    buf.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        push_json_str(buf, k);
        buf.push(':');
        match v {
            ArgVal::U(n) => buf.push_str(&n.to_string()),
            ArgVal::S(s) => push_json_str(buf, s),
            ArgVal::B(b) => buf.push_str(if *b { "true" } else { "false" }),
        }
    }
    buf.push('}');
}

impl ChromeTrace {
    pub fn new() -> Self {
        ChromeTrace {
            buf: String::from("{\"traceEvents\":[\n"),
            any: false,
        }
    }

    fn sep(&mut self) {
        if self.any {
            self.buf.push_str(",\n");
        }
        self.any = true;
    }

    /// Metadata event naming a `(pid, tid)` row in the viewer.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.sep();
        self.buf.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":"
        ));
        push_json_str(&mut self.buf, name);
        self.buf.push_str("}}");
    }

    /// Metadata event naming a `pid` group in the viewer.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.sep();
        self.buf.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":"
        ));
        push_json_str(&mut self.buf, name);
        self.buf.push_str("}}");
    }

    /// Complete (`"X"`) slice: a bar from `ts` for `dur` time units.
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts: u64,
        dur: u64,
        args: &[(&str, ArgVal)],
    ) {
        self.sep();
        self.buf.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":"
        ));
        push_json_str(&mut self.buf, name);
        self.buf.push_str(&format!(",\"ts\":{ts},\"dur\":{dur}"));
        push_args(&mut self.buf, args);
        self.buf.push('}');
    }

    /// Thread-scoped instant (`"i"`) event at `ts`.
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, ts: u64, args: &[(&str, ArgVal)]) {
        self.sep();
        self.buf.push_str(&format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"name\":"
        ));
        push_json_str(&mut self.buf, name);
        self.buf.push_str(&format!(",\"ts\":{ts}"));
        push_args(&mut self.buf, args);
        self.buf.push('}');
    }

    /// Close the trace and return the JSON text (trailing newline
    /// included so shell `diff` treats it as a well-formed text file).
    pub fn finish(mut self) -> String {
        self.buf.push_str("\n]}\n");
        self.buf
    }
}

impl Default for ChromeTrace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_shape() {
        let build = || {
            let mut t = ChromeTrace::new();
            t.process_name(1, "schedule");
            t.thread_name(1, 0, "P0");
            t.complete(1, 0, "n3", 5, 7, &[("task", ArgVal::U(3))]);
            t.instant(0, 0, "task_selected", 0, &[("ok", ArgVal::B(true))]);
            t.finish()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.starts_with("{\"traceEvents\":[\n"));
        assert!(a.ends_with("\n]}\n"));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"dur\":7"));
    }

    #[test]
    fn escapes_strings() {
        let mut t = ChromeTrace::new();
        t.process_name(0, "a\"b\\c\nd");
        let s = t.finish();
        assert!(s.contains("a\\\"b\\\\c\\nd"));
    }
}
