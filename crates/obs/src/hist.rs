//! Fixed-bucket log₂ histograms.
//!
//! 65 buckets cover the whole `u64` range: bucket 0 holds the value 0 and
//! bucket *i* (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)`. Recording is
//! one `leading_zeros` plus one relaxed atomic add — cheap enough for
//! per-placement call sites, and safely shareable across threads.
//!
//! Quantiles are answered at bucket resolution with the same
//! **nearest-rank** convention as `dagsched_metrics::stats::percentile`:
//! the reported bucket is the one containing the element of rank
//! `round(q · (n − 1))` in sorted order. `tests/hist_oracle.rs` proptests
//! this against an exact sort-based oracle.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of buckets (value 0 plus one per power of two).
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `1 + floor(log2(v))`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper edge of a bucket (`u64::MAX` for the last one).
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Inclusive lower edge of a bucket.
pub fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// A log₂ histogram of `u64` samples.
pub struct LogHist {
    buckets: [AtomicU64; BUCKETS],
}

impl LogHist {
    pub const fn new() -> Self {
        LogHist {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        // relaxed-ok: independent monotone tallies; readers only consume
        // them after the recording threads are joined.
        self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        // relaxed-ok: snapshot read of independent counters; exactness is
        // only guaranteed once recorders have quiesced.
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Samples recorded into bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        // relaxed-ok: same quiesced-snapshot contract as count().
        self.buckets[i].load(Relaxed)
    }

    /// Bucket index holding the nearest-rank `q`-quantile sample
    /// (`q` clamped to `[0, 1]`). `None` when empty.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        // relaxed-ok: same quiesced-snapshot contract as count().
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((n - 1) as f64 * q).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(i);
            }
        }
        Some(BUCKETS - 1)
    }

    /// Upper edge of the nearest-rank `q`-quantile bucket: an inclusive
    /// upper bound on the exact quantile, tight to a factor of two.
    pub fn quantile_upper(&self, q: f64) -> Option<u64> {
        self.quantile_bucket(q).map(bucket_upper)
    }

    /// Reset all buckets to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            // relaxed-ok: reset is only called between measurement phases,
            // never concurrently with recorders it must synchronize with.
            b.store(0, Relaxed);
        }
    }

    /// Compact single-line rendering: count plus p50/p95/max bucket upper
    /// edges. Deterministic for a deterministic sample multiset.
    pub fn brief(&self) -> String {
        match (
            self.quantile_upper(0.5),
            self.quantile_upper(0.95),
            self.quantile_upper(1.0),
        ) {
            (Some(p50), Some(p95), Some(max)) => {
                format!("n={} p50<={} p95<={} max<={}", self.count(), p50, p95, max)
            }
            _ => "n=0".into(),
        }
    }
}

impl Default for LogHist {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_lower(i)), i, "lower edge of {i}");
            assert_eq!(bucket_of(bucket_upper(i)), i, "upper edge of {i}");
        }
    }

    #[test]
    fn quantiles_on_a_known_multiset() {
        let h = LogHist::new();
        for v in [0u64, 1, 1, 2, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        // Sorted ranks 0..=6; p0 = value 0 (bucket 0), p100 = 1000
        // (bucket 10: 512..=1023).
        assert_eq!(h.quantile_bucket(0.0), Some(0));
        assert_eq!(h.quantile_bucket(1.0), Some(10));
        // rank(0.5) = 3 → value 2 → bucket 2.
        assert_eq!(h.quantile_bucket(0.5), Some(2));
        assert_eq!(h.quantile_upper(0.5), Some(3));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogHist::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile_bucket(0.5), None);
        assert_eq!(h.brief(), "n=0");
    }
}
