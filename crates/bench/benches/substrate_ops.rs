//! Micro-benchmarks of the substrates every scheduler leans on: level
//! computations, timeline slot searches, route walks, dynamic levels, and
//! the branch-and-bound on an RGBOS-sized instance.

use criterion::{criterion_group, criterion_main, Criterion};
use dagsched_graph::{levels, TaskId};
use dagsched_optimal::{solve, OptimalParams};
use dagsched_platform::{Network, ProcId, Schedule, Topology, Track};
use dagsched_suites::{rgbos, rgnos::RgnosParams, traced};
use std::hint::black_box;

fn graph_levels(c: &mut Criterion) {
    let g = dagsched_suites::rgnos::generate(RgnosParams::new(500, 1.0, 3, 7));
    c.bench_function("levels/b_levels_500", |b| {
        b.iter(|| black_box(levels::b_levels(black_box(&g))))
    });
    c.bench_function("levels/critical_path_500", |b| {
        b.iter(|| black_box(levels::critical_path(black_box(&g))))
    });
    let s = Schedule::new(g.num_tasks(), g.num_tasks());
    c.bench_function("levels/dynlevels_500_empty", |b| {
        b.iter(|| black_box(dagsched_core::common::DynLevels::compute(&g, &s)))
    });
}

fn timeline_ops(c: &mut Criterion) {
    // A fragmented track with 256 occupations and holes between them.
    let mut track: Track<TaskId> = Track::new();
    for i in 0..256u64 {
        track.insert(i * 10, i * 10 + 6, TaskId(i as u32)).unwrap();
    }
    c.bench_function("track/earliest_fit_hole", |b| {
        b.iter(|| black_box(track.earliest_fit(black_box(3), 4)))
    });
    c.bench_function("track/earliest_fit_tail", |b| {
        b.iter(|| black_box(track.earliest_fit(black_box(3), 7)))
    });
}

fn network_ops(c: &mut Criterion) {
    let topo = Topology::hypercube(3).unwrap();
    c.bench_function("topology/route_hypercube3", |b| {
        b.iter(|| black_box(topo.route(ProcId(0), ProcId(7))))
    });
    let mut net = Network::new(topo);
    for i in 0..64u32 {
        net.commit(
            TaskId(i),
            TaskId(i + 1000),
            ProcId(0),
            ProcId(7),
            (i as u64) * 3,
            5,
        );
    }
    c.bench_function("network/probe_loaded", |b| {
        b.iter(|| black_box(net.probe_arrival(ProcId(0), ProcId(7), 10, 5)))
    });
}

fn generators(c: &mut Criterion) {
    c.bench_function("gen/rgnos_500", |b| {
        b.iter(|| {
            black_box(dagsched_suites::rgnos::generate(RgnosParams::new(
                500, 1.0, 3, 1,
            )))
        })
    });
    c.bench_function("gen/cholesky_24", |b| {
        b.iter(|| black_box(traced::cholesky(24, 1.0)))
    });
}

fn bnb(c: &mut Criterion) {
    let g = rgbos::generate(rgbos::RgbosParams {
        nodes: 14,
        ccr: 1.0,
        seed: 5,
    });
    c.bench_function("optimal/bnb_14_nodes", |b| {
        b.iter(|| {
            black_box(solve(
                &g,
                &OptimalParams {
                    procs: Some(4),
                    node_limit: 500_000,
                    heuristic_incumbent: true,
                    threads: Some(1), // honest single-thread timing
                },
            ))
        })
    });
}

criterion_group!(
    benches,
    graph_levels,
    timeline_ops,
    network_ops,
    generators,
    bnb
);
criterion_main!(benches);
