//! Criterion counterpart of Table 6: running time of every algorithm on
//! RGNOS graphs of growing size. The paper's claim under test is the
//! *ranking*: MCP fastest / ETF & DLS slowest in BNP; LC fastest in UNC;
//! BU fastest / DLS-APN slowest in APN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsched_bench::baseline::DscBaseline;
use dagsched_bench::Config;
use dagsched_core::{registry, AlgoClass, Env, Scheduler};
use dagsched_suites::rgnos::{self, RgnosParams};
use std::hint::black_box;

fn algo_runtimes(c: &mut Criterion) {
    let cfg = Config::quick(0x1998);
    let apn_env = Env::apn(cfg.apn_topology());

    for class in [AlgoClass::Bnp, AlgoClass::Unc, AlgoClass::Apn] {
        // APN algorithms are one to two orders of magnitude slower per run
        // (message scheduling); cap their instance sizes so `cargo bench`
        // completes in minutes, exactly like Table 6 does with samples.
        let sizes: &[usize] = if class == AlgoClass::Apn {
            &[50, 100]
        } else {
            &[50, 100, 200]
        };
        let mut group = c.benchmark_group(format!("{class}"));
        group
            .sample_size(10)
            .warm_up_time(std::time::Duration::from_millis(400))
            .measurement_time(std::time::Duration::from_secs(2));
        for &v in sizes {
            let g = rgnos::generate(RgnosParams::new(v, 1.0, 3, 42));
            let env = match class {
                AlgoClass::Apn => apn_env.clone(),
                _ => Env::bnp(cfg.bnp_unlimited_procs(v)),
            };
            for algo in registry::by_class(class) {
                group.bench_with_input(BenchmarkId::new(algo.name(), v), &g, |b, g| {
                    b.iter(|| {
                        let out = algo.schedule(black_box(g), &env).expect("schedules");
                        black_box(out.schedule.makespan())
                    })
                });
            }
        }
        group.finish();
    }
}

/// The PR's acceptance measurement: refactored DSC vs the retained
/// pre-refactor implementation on a 1000-node CCR=1.0 RGNOS graph. The
/// schedules are asserted identical before timing; `perf_baseline` records
/// the same comparison into `BENCH_RESULTS.json`.
fn dsc_speedup(c: &mut Criterion) {
    let g = rgnos::generate(RgnosParams::new(1000, 1.0, 3, 42));
    let env = Env::bnp(1); // UNC algorithms ignore the environment
    let dsc = registry::by_name("DSC").unwrap();
    let base = DscBaseline.schedule(&g, &env).unwrap();
    let new = dsc.schedule(&g, &env).unwrap();
    assert_eq!(
        base.schedule.makespan(),
        new.schedule.makespan(),
        "behavior changed"
    );

    let mut group = c.benchmark_group("dsc_speedup");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(3));
    group.bench_with_input(BenchmarkId::new("baseline", 1000), &g, |b, g| {
        b.iter(|| {
            black_box(
                DscBaseline
                    .schedule(black_box(g), &env)
                    .unwrap()
                    .schedule
                    .makespan(),
            )
        })
    });
    group.bench_with_input(BenchmarkId::new("refactored", 1000), &g, |b, g| {
        b.iter(|| {
            black_box(
                dsc.schedule(black_box(g), &env)
                    .unwrap()
                    .schedule
                    .makespan(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, algo_runtimes, dsc_speedup);
criterion_main!(benches);
