//! Criterion counterpart of Table 6: running time of every algorithm on
//! RGNOS graphs of growing size. The paper's claim under test is the
//! *ranking*: MCP fastest / ETF & DLS slowest in BNP; LC fastest in UNC;
//! BU fastest / DLS-APN slowest in APN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsched_bench::Config;
use dagsched_core::{registry, AlgoClass, Env};
use dagsched_suites::rgnos::{self, RgnosParams};
use std::hint::black_box;

fn algo_runtimes(c: &mut Criterion) {
    let cfg = Config::quick(0x1998);
    let apn_env = Env::apn(cfg.apn_topology());

    for class in [AlgoClass::Bnp, AlgoClass::Unc, AlgoClass::Apn] {
        // APN algorithms are one to two orders of magnitude slower per run
        // (message scheduling); cap their instance sizes so `cargo bench`
        // completes in minutes, exactly like Table 6 does with samples.
        let sizes: &[usize] =
            if class == AlgoClass::Apn { &[50, 100] } else { &[50, 100, 200] };
        let mut group = c.benchmark_group(format!("{class}"));
        group
            .sample_size(10)
            .warm_up_time(std::time::Duration::from_millis(400))
            .measurement_time(std::time::Duration::from_secs(2));
        for &v in sizes {
            let g = rgnos::generate(RgnosParams::new(v, 1.0, 3, 42));
            let env = match class {
                AlgoClass::Apn => apn_env.clone(),
                _ => Env::bnp(cfg.bnp_unlimited_procs(v)),
            };
            for algo in registry::by_class(class) {
                group.bench_with_input(
                    BenchmarkId::new(algo.name(), v),
                    &g,
                    |b, g| {
                        b.iter(|| {
                            let out = algo.schedule(black_box(g), &env).expect("schedules");
                            black_box(out.schedule.makespan())
                        })
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, algo_runtimes);
criterion_main!(benches);
