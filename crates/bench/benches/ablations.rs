//! Timing side of the design-choice ablations: what insertion, look-ahead
//! and level recomputation *cost* (their schedule-quality effect is in the
//! `ablations` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsched_core::{bnp, unc::Dcp, Env, Scheduler};
use dagsched_suites::rgnos::{self, RgnosParams};
use std::hint::black_box;

fn ablation_timing(c: &mut Criterion) {
    let g = rgnos::generate(RgnosParams::new(150, 1.0, 3, 21));
    let env = Env::bnp(16);

    let mut group = c.benchmark_group("mcp_slot_policy");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    for (label, algo) in [("insertion", bnp::mcp()), ("append", bnp::mcp_append())] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &g, |b, g| {
            b.iter(|| {
                black_box(
                    algo.schedule(black_box(g), &env)
                        .unwrap()
                        .schedule
                        .makespan(),
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dcp_lookahead");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    for (label, lookahead) in [("lookahead", true), ("greedy", false)] {
        let algo = Dcp { lookahead };
        group.bench_with_input(BenchmarkId::from_parameter(label), &g, |b, g| {
            b.iter(|| {
                black_box(
                    algo.schedule(black_box(g), &env)
                        .unwrap()
                        .schedule
                        .makespan(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_timing);
criterion_main!(benches);
