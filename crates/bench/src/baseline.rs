//! Pre-refactor reference implementations, kept verbatim so the perf
//! benches can prove speedups against the real former code instead of a
//! straw man. Nothing here is wired into the algorithm registry.
//!
//! [`DscBaseline`] is the DSC implementation as it stood before the
//! hot-path overhaul: a full `Schedule::clone` per DSRW guard evaluation,
//! an O(|ready|) membership scan inside the partially-free search (via
//! [`LinearReadySet`]), and its own uncached b-level pass. The refactored
//! `dagsched_core::unc::Dsc` must produce byte-identical schedules; the
//! `algo_runtimes` bench and the `perf_baseline` binary check both the
//! speedup and the equivalence.

use dagsched_core::{AlgoClass, Env, Outcome, SchedError, Scheduler};
use dagsched_graph::{TaskGraph, TaskId};
use dagsched_platform::{ProcId, Schedule};

/// The ready set as it was before the overhaul: `Vec` membership scans.
#[derive(Debug, Clone)]
struct LinearReadySet {
    missing_preds: Vec<u32>,
    ready: Vec<TaskId>,
}

impl LinearReadySet {
    fn new(g: &TaskGraph) -> LinearReadySet {
        let missing_preds: Vec<u32> = g.tasks().map(|n| g.in_degree(n) as u32).collect();
        let ready = g.entries().collect();
        LinearReadySet {
            missing_preds,
            ready,
        }
    }

    fn contains(&self, n: TaskId) -> bool {
        self.ready.contains(&n)
    }

    fn take(&mut self, g: &TaskGraph, n: TaskId) {
        let idx = self
            .ready
            .iter()
            .position(|&r| r == n)
            .expect("take: node must be ready");
        self.ready.swap_remove(idx);
        for &(child, _) in g.succs(n) {
            self.missing_preds[child.index()] -= 1;
            if self.missing_preds[child.index()] == 0 {
                self.ready.push(child);
            }
        }
    }

    fn argmax_by_key<K: Ord>(&self, mut key: impl FnMut(TaskId) -> K) -> Option<TaskId> {
        self.ready
            .iter()
            .copied()
            .max_by(|&a, &b| key(a).cmp(&key(b)).then(b.0.cmp(&a.0)))
    }
}

/// Uncached b-levels, exactly as `levels::b_levels` computed them before
/// the per-graph cache existed.
fn b_levels_uncached(g: &TaskGraph) -> Vec<u64> {
    let mut bl = vec![0u64; g.num_tasks()];
    for &n in g.topo_order().iter().rev() {
        let mut best = 0u64;
        for &(s, c) in g.succs(n) {
            best = best.max(c + bl[s.index()]);
        }
        bl[n.index()] = g.weight(n) + best;
    }
    bl
}

/// The pre-refactor DSC. See the module docs; the algorithm itself is the
/// one described in `dagsched_core::unc::dsc`.
#[derive(Debug, Default, Clone, Copy)]
pub struct DscBaseline;

impl Scheduler for DscBaseline {
    fn name(&self) -> &'static str {
        "DSC-baseline"
    }

    fn class(&self) -> AlgoClass {
        AlgoClass::Unc
    }

    fn schedule(&self, g: &TaskGraph, _env: &Env) -> Result<Outcome, SchedError> {
        let v = g.num_tasks();
        let bl = b_levels_uncached(g);
        let mut s = Schedule::new(v, v);
        let mut tlevel = vec![0u64; v];
        let mut ready = LinearReadySet::new(g);
        let mut next_fresh = 0u32;
        let mut scheduled_count = 0usize;

        while scheduled_count < v {
            let nf = ready
                .argmax_by_key(|n| tlevel[n.index()] + bl[n.index()])
                .expect("acyclic graph always has a free node");

            let pfp = partially_free_max(g, &s, &ready, &tlevel, &bl);

            let mut best: Option<(u64, ProcId)> = None;
            let mut parent_procs: Vec<ProcId> = g
                .preds(nf)
                .iter()
                .filter_map(|&(q, _)| s.proc_of(q))
                .collect();
            parent_procs.sort_unstable();
            parent_procs.dedup();
            for &p in &parent_procs {
                let start = append_start(g, &s, nf, p);
                if best.is_none_or(|(bs, bp)| start < bs || (start == bs && p < bp)) {
                    best = Some((start, p));
                }
            }

            let mut placed = false;
            if let Some((start, p)) = best {
                if start < tlevel[nf.index()] {
                    let dsrw_ok = match pfp {
                        Some(pf) if priority(pf, &tlevel, &bl) > priority(nf, &tlevel, &bl) => {
                            let before = append_start(g, &s, pf, p);
                            let after = {
                                let mut trial = s.clone();
                                trial
                                    .place(nf, p, start, g.weight(nf))
                                    .expect("append start is free");
                                append_start(g, &trial, pf, p)
                            };
                            after <= before
                        }
                        _ => true,
                    };
                    if dsrw_ok {
                        s.place(nf, p, start, g.weight(nf))
                            .expect("append start is free");
                        tlevel[nf.index()] = start;
                        placed = true;
                    }
                }
            }
            if !placed {
                while !s.timeline(ProcId(next_fresh)).is_empty() {
                    next_fresh += 1;
                }
                let p = ProcId(next_fresh);
                let start = tlevel[nf.index()];
                s.place(nf, p, start, g.weight(nf))
                    .expect("fresh cluster is idle");
            }
            scheduled_count += 1;

            let fin = s.finish_of(nf).expect("just placed");
            for &(c, cost) in g.succs(nf) {
                tlevel[c.index()] = tlevel[c.index()].max(fin + cost);
            }
            ready.take(g, nf);
        }

        Ok(Outcome {
            schedule: s,
            network: None,
        })
    }
}

#[inline]
fn priority(n: TaskId, tlevel: &[u64], bl: &[u64]) -> u64 {
    tlevel[n.index()] + bl[n.index()]
}

fn append_start(g: &TaskGraph, s: &Schedule, n: TaskId, p: ProcId) -> u64 {
    let mut drt = 0u64;
    for &(q, c) in g.preds(n) {
        if let Some(pl) = s.placement(q) {
            let cost = if pl.proc == p { 0 } else { c };
            drt = drt.max(pl.finish + cost);
        }
    }
    s.timeline(p).earliest_append(drt)
}

fn partially_free_max(
    g: &TaskGraph,
    s: &Schedule,
    ready: &LinearReadySet,
    tlevel: &[u64],
    bl: &[u64],
) -> Option<TaskId> {
    g.tasks()
        .filter(|&n| s.placement(n).is_none())
        .filter(|&n| !ready.contains(n))
        .filter(|&n| g.preds(n).iter().any(|&(q, _)| s.placement(q).is_some()))
        .max_by_key(|&n| (priority(n, tlevel, bl), std::cmp::Reverse(n.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::registry;
    use dagsched_suites::rgnos::{self, RgnosParams};

    /// The refactored DSC must match the baseline schedule exactly — same
    /// makespan, same processor count — on a spread of RGNOS instances.
    #[test]
    fn refactored_dsc_matches_baseline_schedules() {
        let dsc = registry::by_name("DSC").unwrap();
        let env = Env::bnp(1); // UNC algorithms ignore the environment
        for &(v, ccr, seed) in &[
            (60usize, 0.1, 1u64),
            (60, 1.0, 2),
            (120, 1.0, 3),
            (120, 10.0, 4),
        ] {
            let g = rgnos::generate(RgnosParams::new(v, ccr, 3, seed));
            let a = DscBaseline.schedule(&g, &env).unwrap();
            let b = dsc.schedule(&g, &env).unwrap();
            for n in g.tasks() {
                assert_eq!(
                    a.schedule.placement(n),
                    b.schedule.placement(n),
                    "v={v} ccr={ccr} seed={seed} task {n}"
                );
            }
        }
    }
}
