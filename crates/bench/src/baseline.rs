//! Pre-refactor reference implementations, kept verbatim so the perf
//! benches can prove speedups against the real former code instead of a
//! straw man. Nothing here is wired into the algorithm registry.
//!
//! [`DscBaseline`] is the DSC implementation as it stood before the
//! hot-path overhaul: a full `Schedule::clone` per DSRW guard evaluation,
//! an O(|ready|) membership scan inside the partially-free search (via
//! `LinearReadySet`), and its own uncached b-level pass. The refactored
//! `dagsched_core::unc::Dsc` must produce byte-identical schedules; the
//! `algo_runtimes` bench and the `perf_baseline` binary check both the
//! speedup and the equivalence.
//!
//! [`DscScanBaseline`] is DSC as it stood *after* that first overhaul but
//! before the incremental priority-queue engine: clone-free DSRW and an
//! O(1)-membership ready set, yet still an O(|ready|) scan to select the
//! free node and — the dominant cost — a fresh O(v + e) whole-graph scan
//! per step to find the highest-priority partially free node. The
//! heap-driven `dagsched_core::unc::Dsc` must again produce byte-identical
//! schedules; `perf_baseline`'s `dsc_incremental_speedup` section gates
//! the speedup at paper scale.
//!
//! [`DynScanBaseline`] is the dynamic-levels computation as MD and DCP
//! consumed it before the incremental engine: a full rebuild of the
//! scheduled-graph view — combined adjacency vectors, Kahn order, forward
//! and backward passes — after **every** placement. [`MdScan`] and
//! [`DcpScan`] are MD and DCP over that rescan, decision-identical to the
//! engine-driven `dagsched_core::unc::{Md, Dcp}` (including the repaired
//! look-ahead probe, which changed decisions and is pinned by its own
//! regression test + the golden table); `perf_baseline` gates
//! `md_incremental_speedup` / `dcp_incremental_speedup` and the sweep
//! below proves placement identity.
//!
//! [`BsaBaseline`] is BSA as it stood before the APN message-layer
//! overhaul, over a verbatim retention of the old message layer
//! (`OldNetwork`/`OldTrack`): per-call route vectors with a
//! `link_between` lookup per hop, probe-then-insert double slot searches,
//! O(n) tag-scan removals, a tombstone message store behind a hashed edge
//! index — and, on top, the old algorithmic shape: every tentative
//! migration cloned the per-processor orders and **replayed the entire
//! schedule from scratch** (fresh `Schedule`, fresh network over a cloned
//! `Topology`, every message recommitted). The refactored
//! `dagsched_core::apn::Bsa` evaluates candidates through an incremental
//! rollback journal over the new layer instead and must produce
//! placement- *and* message-identical schedules; `perf_baseline` gates
//! the speedup.
//!
//! [`bnp`] holds the six BNP list schedulers as they stood before the
//! composable-scheduler refactor; the `dagsched_core::compose` presets
//! must match them placement for placement.

pub mod bnp;

use dagsched_core::common::{drt, ReadySet};
use dagsched_core::{AlgoClass, Env, Outcome, SchedError, Scheduler};
use dagsched_graph::{levels, TaskGraph, TaskId};
use dagsched_platform::{Message, MessageHop, Network, ProcId, Schedule, Topology};

/// The ready set as it was before the overhaul: `Vec` membership scans.
#[derive(Debug, Clone)]
struct LinearReadySet {
    missing_preds: Vec<u32>,
    ready: Vec<TaskId>,
}

impl LinearReadySet {
    fn new(g: &TaskGraph) -> LinearReadySet {
        let missing_preds: Vec<u32> = g.tasks().map(|n| g.in_degree(n) as u32).collect();
        let ready = g.entries().collect();
        LinearReadySet {
            missing_preds,
            ready,
        }
    }

    fn contains(&self, n: TaskId) -> bool {
        self.ready.contains(&n)
    }

    fn take(&mut self, g: &TaskGraph, n: TaskId) {
        let idx = self
            .ready
            .iter()
            .position(|&r| r == n)
            .expect("take: node must be ready");
        self.ready.swap_remove(idx);
        for &(child, _) in g.succs(n) {
            self.missing_preds[child.index()] -= 1;
            if self.missing_preds[child.index()] == 0 {
                self.ready.push(child);
            }
        }
    }

    fn argmax_by_key<K: Ord>(&self, mut key: impl FnMut(TaskId) -> K) -> Option<TaskId> {
        self.ready
            .iter()
            .copied()
            .max_by(|&a, &b| key(a).cmp(&key(b)).then(b.0.cmp(&a.0)))
    }
}

/// Uncached b-levels, exactly as `levels::b_levels` computed them before
/// the per-graph cache existed.
fn b_levels_uncached(g: &TaskGraph) -> Vec<u64> {
    let mut bl = vec![0u64; g.num_tasks()];
    for &n in g.topo_order().iter().rev() {
        let mut best = 0u64;
        for &(s, c) in g.succs(n) {
            best = best.max(c + bl[s.index()]);
        }
        bl[n.index()] = g.weight(n) + best;
    }
    bl
}

/// The pre-refactor DSC. See the module docs; the algorithm itself is the
/// one described in `dagsched_core::unc::dsc`.
#[derive(Debug, Default, Clone, Copy)]
pub struct DscBaseline;

impl Scheduler for DscBaseline {
    fn name(&self) -> &'static str {
        "DSC-baseline"
    }

    fn class(&self) -> AlgoClass {
        AlgoClass::Unc
    }

    fn schedule(&self, g: &TaskGraph, _env: &Env) -> Result<Outcome, SchedError> {
        let v = g.num_tasks();
        let bl = b_levels_uncached(g);
        let mut s = Schedule::new(v, v);
        let mut tlevel = vec![0u64; v];
        let mut ready = LinearReadySet::new(g);
        let mut next_fresh = 0u32;
        let mut scheduled_count = 0usize;

        while scheduled_count < v {
            let nf = ready
                .argmax_by_key(|n| tlevel[n.index()] + bl[n.index()])
                .expect("acyclic graph always has a free node");

            let pfp = partially_free_max(g, &s, &ready, &tlevel, &bl);

            let mut best: Option<(u64, ProcId)> = None;
            let mut parent_procs: Vec<ProcId> = g
                .preds(nf)
                .iter()
                .filter_map(|&(q, _)| s.proc_of(q))
                .collect();
            parent_procs.sort_unstable();
            parent_procs.dedup();
            for &p in &parent_procs {
                let start = append_start(g, &s, nf, p);
                if best.is_none_or(|(bs, bp)| start < bs || (start == bs && p < bp)) {
                    best = Some((start, p));
                }
            }

            let mut placed = false;
            if let Some((start, p)) = best {
                if start < tlevel[nf.index()] {
                    let dsrw_ok = match pfp {
                        Some(pf) if priority(pf, &tlevel, &bl) > priority(nf, &tlevel, &bl) => {
                            let before = append_start(g, &s, pf, p);
                            let after = {
                                let mut trial = s.clone();
                                trial
                                    .place(nf, p, start, g.weight(nf))
                                    .expect("append start is free");
                                append_start(g, &trial, pf, p)
                            };
                            after <= before
                        }
                        _ => true,
                    };
                    if dsrw_ok {
                        s.place(nf, p, start, g.weight(nf))
                            .expect("append start is free");
                        tlevel[nf.index()] = start;
                        placed = true;
                    }
                }
            }
            if !placed {
                while !s.timeline(ProcId(next_fresh)).is_empty() {
                    next_fresh += 1;
                }
                let p = ProcId(next_fresh);
                let start = tlevel[nf.index()];
                s.place(nf, p, start, g.weight(nf))
                    .expect("fresh cluster is idle");
            }
            scheduled_count += 1;

            let fin = s.finish_of(nf).expect("just placed");
            for &(c, cost) in g.succs(nf) {
                tlevel[c.index()] = tlevel[c.index()].max(fin + cost);
            }
            ready.take(g, nf);
        }

        Ok(Outcome {
            schedule: s,
            network: None,
        })
    }
}

#[inline]
fn priority(n: TaskId, tlevel: &[u64], bl: &[u64]) -> u64 {
    tlevel[n.index()] + bl[n.index()]
}

fn append_start(g: &TaskGraph, s: &Schedule, n: TaskId, p: ProcId) -> u64 {
    let mut drt = 0u64;
    for &(q, c) in g.preds(n) {
        if let Some(pl) = s.placement(q) {
            let cost = if pl.proc == p { 0 } else { c };
            drt = drt.max(pl.finish + cost);
        }
    }
    s.timeline(p).earliest_append(drt)
}

fn partially_free_max(
    g: &TaskGraph,
    s: &Schedule,
    ready: &LinearReadySet,
    tlevel: &[u64],
    bl: &[u64],
) -> Option<TaskId> {
    g.tasks()
        .filter(|&n| s.placement(n).is_none())
        .filter(|&n| !ready.contains(n))
        .filter(|&n| g.preds(n).iter().any(|&(q, _)| s.placement(q).is_some()))
        .max_by_key(|&n| (priority(n, tlevel, bl), std::cmp::Reverse(n.0)))
}

/// The DSC of the PR-1 hot-path overhaul, retained verbatim: clone-free
/// DSRW (place/estimate/unplace on the live schedule) and the O(1)
/// membership `ReadySet`, but per step still an O(|ready|) `argmax` scan
/// for the free node and a full O(v + e) graph scan for the partially free
/// one. The incremental `dagsched_core::unc::Dsc` replaces both scans with
/// rekeyable [`dagsched_core::common::IndexedHeap`]s and must stay
/// placement-identical.
#[derive(Debug, Default, Clone, Copy)]
pub struct DscScanBaseline;

impl Scheduler for DscScanBaseline {
    fn name(&self) -> &'static str {
        "DSC-scan-baseline"
    }

    fn class(&self) -> AlgoClass {
        AlgoClass::Unc
    }

    fn schedule(&self, g: &TaskGraph, _env: &Env) -> Result<Outcome, SchedError> {
        let v = g.num_tasks();
        let bl = g.levels().b_levels(); // static b-levels, as in the original
        let mut s = Schedule::new(v, v);
        // tlevel[n] = current estimate of n's earliest start: for scheduled
        // nodes their actual start; for unscheduled, max over scheduled
        // parents of finish + c (full c: no cluster commitment yet).
        let mut tlevel = vec![0u64; v];
        let mut ready = ReadySet::new(g);
        let mut next_fresh = 0u32; // clusters are allocated in id order
        let mut scheduled_count = 0usize;

        while scheduled_count < v {
            let nf = ready
                .argmax_by_key(|n| tlevel[n.index()] + bl[n.index()])
                .expect("acyclic graph always has a free node");

            // Highest-priority *partially free* node: unscheduled, not free,
            // with at least one scheduled parent (its start estimate is
            // meaningful).
            let pfp = partially_free_max_scan(g, &s, &ready, &tlevel, bl);

            // Candidate clusters: those of nf's parents, evaluated by the
            // start time nf would get appended there (edges from parents in
            // that cluster are zeroed).
            let mut best: Option<(u64, ProcId)> = None;
            let mut parent_procs: Vec<ProcId> = g
                .preds(nf)
                .iter()
                .filter_map(|&(q, _)| s.proc_of(q))
                .collect();
            parent_procs.sort_unstable();
            parent_procs.dedup();
            for &p in &parent_procs {
                let start = append_start(g, &s, nf, p);
                if best.is_none_or(|(bs, bp)| start < bs || (start == bs && p < bp)) {
                    best = Some((start, p));
                }
            }

            // Accept the merge only if it strictly reduces nf's t-level and
            // does not violate the DSRW guard.
            let mut placed = false;
            if let Some((start, p)) = best {
                if start < tlevel[nf.index()] {
                    let dsrw_ok = match pfp {
                        Some(pf) if priority(pf, &tlevel, bl) > priority(nf, &tlevel, bl) => {
                            // Estimate pf's start on that cluster before and
                            // after the attachment; reject if it would grow.
                            let before = append_start(g, &s, pf, p);
                            s.place(nf, p, start, g.weight(nf))
                                .expect("append start is free");
                            let after = append_start(g, &s, pf, p);
                            s.unplace(nf);
                            after <= before
                        }
                        _ => true,
                    };
                    if dsrw_ok {
                        s.place(nf, p, start, g.weight(nf))
                            .expect("append start is free");
                        tlevel[nf.index()] = start;
                        placed = true;
                    }
                }
            }
            if !placed {
                // Own (fresh) cluster at the plain t-level.
                while !s.timeline(ProcId(next_fresh)).is_empty() {
                    next_fresh += 1;
                }
                let p = ProcId(next_fresh);
                let start = tlevel[nf.index()];
                s.place(nf, p, start, g.weight(nf))
                    .expect("fresh cluster is idle");
            }
            scheduled_count += 1;

            // Propagate t-level estimates to children.
            let fin = s.finish_of(nf).expect("just placed");
            for &(c, cost) in g.succs(nf) {
                tlevel[c.index()] = tlevel[c.index()].max(fin + cost);
            }
            ready.take(g, nf);
        }

        Ok(Outcome {
            schedule: s,
            network: None,
        })
    }
}

/// The O(v + e) whole-graph scan the heap engine replaced: every step,
/// filter all tasks down to the partially free ones and max over them.
fn partially_free_max_scan(
    g: &TaskGraph,
    s: &Schedule,
    ready: &ReadySet,
    tlevel: &[u64],
    bl: &[u64],
) -> Option<TaskId> {
    g.tasks()
        .filter(|&n| s.placement(n).is_none())
        .filter(|&n| !ready.contains(n))
        .filter(|&n| g.preds(n).iter().any(|&(q, _)| s.placement(q).is_some()))
        .max_by_key(|&n| (priority(n, tlevel, bl), std::cmp::Reverse(n.0)))
}

/// The dynamic-levels rescan as MD and DCP consumed it before the
/// incremental engine, retained verbatim (modulo the acyclicity hard
/// error and recorded-finish reads, correctness fixes that must hold on
/// both sides of the equivalence sweep): every placement pays a full
/// O(v + e) rebuild of the scheduled-graph view.
///
/// This is a deliberate frozen copy even though
/// `dagsched_core::common::DynLevels::compute` still exists upstream: the
/// original now serves only as the property-test oracle and is free to be
/// optimized, while this retention must keep the *old cost profile* so
/// the `md_incremental_speedup` / `dcp_incremental_speedup` gates compare
/// against the real former code (the same discipline as
/// [`DscScanBaseline`]). Semantic fixes to the scheduled-graph view must
/// be mirrored here or the placement-identity sweep below will flag the
/// divergence. The incremental `dagsched_core::common::DynLevelsEngine`
/// must stay value-identical; [`MdScan`] / [`DcpScan`] drive
/// whole-schedule comparisons.
#[derive(Debug, Default, Clone, Copy)]
pub struct DynScanBaseline;

impl DynScanBaseline {
    /// Compute levels for graph `g` under partial schedule `s`, from
    /// scratch.
    pub fn compute(g: &TaskGraph, s: &Schedule) -> dagsched_core::common::DynLevels {
        let v = g.num_tasks();
        // Combined adjacency = original edges (possibly zeroed) + sequence
        // edges. Build successor lists once per call.
        let mut succs: Vec<Vec<(TaskId, u64)>> = vec![Vec::new(); v];
        let mut indeg: Vec<u32> = vec![0; v];
        for e in g.edges() {
            let cost = match (s.placement(e.src), s.placement(e.dst)) {
                (Some(a), Some(b)) if a.proc == b.proc => 0,
                _ => e.cost,
            };
            succs[e.src.index()].push((e.dst, cost));
            indeg[e.dst.index()] += 1;
        }
        for pi in 0..s.num_procs() as u32 {
            let slots = s.timeline(ProcId(pi)).slots();
            for w in slots.windows(2) {
                succs[w[0].tag.index()].push((w[1].tag, 0));
                indeg[w[1].tag.index()] += 1;
            }
        }

        // Kahn order over the combined DAG.
        let mut queue: std::collections::VecDeque<TaskId> = (0..v as u32)
            .map(TaskId)
            .filter(|n| indeg[n.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(v);
        {
            let mut indeg = indeg.clone();
            while let Some(n) = queue.pop_front() {
                order.push(n);
                for &(m, _) in &succs[n.index()] {
                    indeg[m.index()] -= 1;
                    if indeg[m.index()] == 0 {
                        queue.push_back(m);
                    }
                }
            }
        }
        assert_eq!(order.len(), v, "combined scheduled graph must stay acyclic");

        // Forward pass: t-levels (placed tasks pinned at their start,
        // propagating their recorded finish).
        let mut tl = vec![0u64; v];
        for &n in &order {
            let finish = match s.placement(n) {
                Some(p) => {
                    tl[n.index()] = p.start;
                    p.finish
                }
                None => tl[n.index()] + g.weight(n),
            };
            for &(m, c) in &succs[n.index()] {
                if s.placement(m).is_none() {
                    let cand = finish + c;
                    if cand > tl[m.index()] {
                        tl[m.index()] = cand;
                    }
                }
            }
        }

        // Backward pass: b-levels.
        let mut bl = vec![0u64; v];
        for &n in order.iter().rev() {
            let mut best = 0u64;
            for &(m, c) in &succs[n.index()] {
                best = best.max(c + bl[m.index()]);
            }
            bl[n.index()] = g.weight(n) + best;
        }

        let cp = (0..v).map(|i| tl[i] + bl[i]).max().unwrap_or(0);
        dagsched_core::common::DynLevels { tl, bl, cp }
    }
}

/// DCP's candidate processor set, as shared by the scan-era schedulers:
/// processors holding a parent or child of `n`, plus the first idle one.
fn neighbourhood_procs_scan(g: &TaskGraph, s: &Schedule, n: TaskId) -> Vec<ProcId> {
    let mut out: Vec<ProcId> = Vec::new();
    for &(q, _) in g.preds(n).iter().chain(g.succs(n).iter()) {
        if let Some(p) = s.proc_of(q) {
            out.push(p);
        }
    }
    for pi in 0..s.num_procs() as u32 {
        if s.timeline(ProcId(pi)).is_empty() {
            out.push(ProcId(pi));
            break;
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// MD over the per-placement [`DynScanBaseline`] rescan — the pre-engine
/// implementation, decision-identical to `dagsched_core::unc::Md`.
#[derive(Debug, Default, Clone, Copy)]
pub struct MdScan;

impl Scheduler for MdScan {
    fn name(&self) -> &'static str {
        "MD-scan-baseline"
    }

    fn class(&self) -> AlgoClass {
        AlgoClass::Unc
    }

    fn schedule(&self, g: &TaskGraph, _env: &Env) -> Result<Outcome, SchedError> {
        let v = g.num_tasks();
        let mut s = Schedule::new(v, v);
        let mut ready = ReadySet::new(g);
        let mut used = 0u32; // processors 0..used have been opened

        while !ready.is_empty() {
            let d = DynScanBaseline::compute(g, &s);
            // Minimum relative mobility; exact comparison via
            // cross-multiplication: M(a) < M(b) ⇔ slack_a·w_b < slack_b·w_a.
            let n = ready
                .iter()
                .min_by(|&a, &b| {
                    let (sa, sb) = (d.mobility(a) as u128, d.mobility(b) as u128);
                    let (wa, wb) = (g.weight(a) as u128, g.weight(b) as u128);
                    (sa * wb)
                        .cmp(&(sb * wa))
                        .then(d.aest(a).cmp(&d.aest(b)))
                        .then(a.0.cmp(&b.0))
                })
                .expect("ready set non-empty");

            let alst = d.alst(n);
            let w = g.weight(n);
            // First used processor with an insertion slot that keeps the CP.
            let mut placed_at: Option<(ProcId, u64)> = None;
            for pi in 0..used {
                let p = ProcId(pi);
                let start = s.timeline(p).earliest_fit(drt(g, &s, n, p), w);
                if start <= alst {
                    placed_at = Some((p, start));
                    break;
                }
            }
            let (p, start) = placed_at.unwrap_or_else(|| {
                // Fresh processor: starts exactly at the t-level.
                let p = ProcId(used);
                (p, d.aest(n))
            });
            if p.0 == used {
                used += 1;
            }
            s.place(n, p, start, w).expect("chosen slot is free");
            ready.take(g, n);
        }

        Ok(Outcome {
            schedule: s,
            network: None,
        })
    }
}

/// DCP over the per-placement [`DynScanBaseline`] rescan — the pre-engine
/// implementation, decision-identical to `dagsched_core::unc::Dcp` with
/// the look-ahead enabled (including the repaired insertion-policy child
/// probe, so the only difference is how levels are obtained).
#[derive(Debug, Default, Clone, Copy)]
pub struct DcpScan;

impl Scheduler for DcpScan {
    fn name(&self) -> &'static str {
        "DCP-scan-baseline"
    }

    fn class(&self) -> AlgoClass {
        AlgoClass::Unc
    }

    fn schedule(&self, g: &TaskGraph, _env: &Env) -> Result<Outcome, SchedError> {
        let v = g.num_tasks();
        let mut s = Schedule::new(v, v);
        let mut ready = ReadySet::new(g);

        while !ready.is_empty() {
            let d = DynScanBaseline::compute(g, &s);
            // Smallest mobility (ALST − AEST), then smallest AEST, then id.
            let n = ready
                .iter()
                .min_by_key(|&n| (d.mobility(n), d.aest(n), n.0))
                .expect("ready set non-empty");
            let w = g.weight(n);

            // Critical child: unscheduled child with the smallest ALST.
            let crit_child: Option<TaskId> = g
                .succs(n)
                .iter()
                .map(|&(c, _)| c)
                .filter(|&c| s.placement(c).is_none())
                .min_by_key(|&c| (d.alst(c), c.0));

            let mut best: Option<(u64, u64, ProcId)> = None; // (score, start, proc)
            for p in neighbourhood_procs_scan(g, &s, n) {
                let start = s.timeline(p).earliest_fit(drt(g, &s, n, p), w);
                let score = match crit_child {
                    Some(cc) => {
                        let mut child_drt = start + w; // n → cc zeroed on p
                        for &(q, c) in g.preds(cc) {
                            if q == n {
                                continue;
                            }
                            if let Some(pl) = s.placement(q) {
                                let cost = if pl.proc == p { 0 } else { c };
                                child_drt = child_drt.max(pl.finish + cost);
                            }
                        }
                        s.place(n, p, start, w).expect("probed slot is free");
                        let child_est = s.timeline(p).earliest_fit(child_drt, g.weight(cc));
                        s.unplace(n);
                        start + child_est
                    }
                    None => start,
                };
                if best.is_none_or(|(bs, bst, bp)| (score, start, p.0) < (bs, bst, bp.0)) {
                    best = Some((score, start, p));
                }
            }
            let (_, start, p) = best.expect("neighbourhood always has a fresh candidate");
            s.place(n, p, start, w).expect("insertion slot is free");
            ready.take(g, n);
        }

        Ok(Outcome {
            schedule: s,
            network: None,
        })
    }
}

/// The link-occupancy track as it stood before the overhaul: insert
/// re-searches the slot list the probe already walked, and removal is an
/// O(n) scan by tag.
#[derive(Debug, Clone, Default)]
struct OldTrack {
    slots: Vec<(u64, u64, dagsched_platform::MsgId)>, // (start, finish, tag)
}

impl OldTrack {
    fn earliest_fit(&self, earliest: u64, duration: u64) -> u64 {
        let mut candidate = earliest;
        let first = self.slots.partition_point(|s| s.1 <= earliest);
        for s in &self.slots[first..] {
            if s.0 >= candidate && s.0 - candidate >= duration {
                return candidate;
            }
            if s.1 > candidate {
                candidate = s.1;
            }
        }
        candidate
    }

    fn insert(&mut self, start: u64, finish: u64, tag: dagsched_platform::MsgId) {
        let idx = self.slots.partition_point(|s| s.0 < start);
        debug_assert!(idx == 0 || self.slots[idx - 1].1 <= start);
        debug_assert!(idx == self.slots.len() || self.slots[idx].0 >= finish);
        self.slots.insert(idx, (start, finish, tag));
    }
}

/// The message layer as it stood before the overhaul (PR 2 state),
/// retained verbatim in behaviour and cost profile: per-call route
/// vectors with a `link_between` lookup per hop, a tombstone-accumulating
/// message store, a hashed edge index, and probe-then-insert double slot
/// searches. Produces arrival times identical to the new `Network`.
struct OldNetwork {
    topo: Topology,
    tracks: Vec<OldTrack>,
    messages: Vec<Option<Message>>,
    by_edge: std::collections::HashMap<(TaskId, TaskId), dagsched_platform::MsgId>,
}

impl OldNetwork {
    fn new(topo: Topology) -> OldNetwork {
        let links = topo.num_links();
        OldNetwork {
            topo,
            tracks: vec![OldTrack::default(); links],
            messages: Vec::new(),
            by_edge: std::collections::HashMap::new(),
        }
    }

    /// The pre-overhaul route computation: a fresh `Vec` per call, one
    /// adjacency binary search per hop.
    fn route(&self, a: ProcId, b: ProcId) -> Vec<dagsched_platform::LinkId> {
        let procs = self.topo.route_procs(a, b);
        let mut out = Vec::new();
        for w in procs.windows(2) {
            out.push(
                self.topo
                    .link_between(w[0], w[1])
                    .expect("next hop must be adjacent"),
            );
        }
        out
    }

    fn walk_route(
        &self,
        from: ProcId,
        to: ProcId,
        ready: u64,
        size: u64,
        mut visit: impl FnMut(dagsched_platform::LinkId, u64, u64),
    ) -> u64 {
        if from == to || size == 0 {
            return ready;
        }
        let route = self.route(from, to);
        let mut t = ready;
        for &link in &route {
            let s = self.tracks[link.index()].earliest_fit(t, size);
            let f = s + size;
            visit(link, s, f);
            t = f;
        }
        t
    }

    fn commit(
        &mut self,
        src_task: TaskId,
        dst_task: TaskId,
        from: ProcId,
        to: ProcId,
        ready: u64,
        size: u64,
    ) -> u64 {
        if let Some(id) = self.by_edge.remove(&(src_task, dst_task)) {
            if let Some(msg) = self.messages[id.0 as usize].take() {
                for hop in &msg.hops {
                    let track = &mut self.tracks[hop.link.index()];
                    let idx = track
                        .slots
                        .iter()
                        .position(|s| s.2 == id)
                        .expect("hop reserved");
                    track.slots.remove(idx);
                }
            }
        }
        let id = dagsched_platform::MsgId(self.messages.len() as u32);
        let mut hops = Vec::new();
        let arrival = self.walk_route(from, to, ready, size, |link, s, f| {
            hops.push(MessageHop {
                link,
                start: s,
                finish: f,
            });
        });
        for hop in &hops {
            self.tracks[hop.link.index()].insert(hop.start, hop.finish, id);
        }
        self.messages.push(Some(Message {
            src_task,
            dst_task,
            from,
            to,
            hops,
            ready,
            arrival,
        }));
        self.by_edge.insert((src_task, dst_task), id);
        arrival
    }
}

/// Task schedule + link state for the baseline BSA, mirroring the former
/// private `ApnState` of `dagsched_core::apn` over the old message layer.
struct ApnStateBaseline {
    s: Schedule,
    net: OldNetwork,
}

impl ApnStateBaseline {
    fn commit_and_place(&mut self, g: &TaskGraph, n: TaskId, p: ProcId) -> u64 {
        let mut drt = 0u64;
        for &(q, c) in g.preds(n) {
            let pl = self.s.placement(q).expect("commit: parent must be placed");
            let arrival = if pl.proc == p || c == 0 {
                pl.finish
            } else {
                self.net.commit(q, n, pl.proc, p, pl.finish, c)
            };
            drt = drt.max(arrival);
        }
        let start = self.s.timeline(p).earliest_append(drt);
        self.s
            .place(n, p, start, g.weight(n))
            .expect("append start is free");
        start
    }
}

/// From-scratch replay of a full assignment, exactly as the pre-overhaul
/// BSA ran it once per tentative migration: fresh schedule, fresh network
/// (cloning the topology), every message recommitted through the old
/// message layer.
fn replay_baseline(
    g: &TaskGraph,
    topo: &Topology,
    orders: &[Vec<TaskId>],
) -> Option<ApnStateBaseline> {
    let procs = topo.num_procs();
    let mut st = ApnStateBaseline {
        s: Schedule::new(g.num_tasks(), procs),
        net: OldNetwork::new(topo.clone()),
    };
    let mut heads = vec![0usize; procs];
    let mut remaining = g.num_tasks();
    while remaining > 0 {
        let mut progress = false;
        for pi in 0..procs as u32 {
            let p = ProcId(pi);
            while let Some(&n) = orders[pi as usize].get(heads[pi as usize]) {
                let ready = g.preds(n).iter().all(|&(q, _)| st.s.placement(q).is_some());
                if !ready {
                    break;
                }
                st.commit_and_place(g, n, p);
                heads[pi as usize] += 1;
                remaining -= 1;
                progress = true;
            }
        }
        if !progress {
            return None;
        }
    }
    Some(st)
}

/// Rebuild the final outcome on the *new* message layer by replaying the
/// decided orders once through the public `Network` API (identical times:
/// the layers implement the same model). Runs once, outside the timed
/// migration loop, so `BsaBaseline`'s `Outcome` is comparable field by
/// field with the refactored BSA's.
fn modern_outcome(g: &TaskGraph, topo: &Topology, orders: &[Vec<TaskId>]) -> Outcome {
    let procs = topo.num_procs();
    let mut s = Schedule::new(g.num_tasks(), procs);
    let mut net = Network::new(topo.clone());
    let mut heads = vec![0usize; procs];
    let mut remaining = g.num_tasks();
    while remaining > 0 {
        let mut progress = false;
        for pi in 0..procs as u32 {
            let p = ProcId(pi);
            while let Some(&n) = orders[pi as usize].get(heads[pi as usize]) {
                let ready = g.preds(n).iter().all(|&(q, _)| s.placement(q).is_some());
                if !ready {
                    break;
                }
                let mut drt = 0u64;
                for &(q, c) in g.preds(n) {
                    let pl = s.placement(q).expect("parent placed");
                    let arrival = if pl.proc == p || c == 0 {
                        pl.finish
                    } else {
                        net.commit(q, n, pl.proc, p, pl.finish, c).1
                    };
                    drt = drt.max(arrival);
                }
                let start = s.timeline(p).earliest_append(drt);
                s.place(n, p, start, g.weight(n)).expect("append is free");
                heads[pi as usize] += 1;
                remaining -= 1;
                progress = true;
            }
        }
        assert!(progress, "decided orders cannot deadlock");
    }
    Outcome {
        schedule: s,
        network: Some(net),
    }
}

/// The CPN-dominant sequence, copied verbatim from `dagsched_core::apn::bsa`
/// (the sequence construction is not part of the overhaul).
fn cpn_dominant_sequence(g: &TaskGraph) -> Vec<TaskId> {
    let cp = levels::critical_path(g);
    let bl = g.levels().b_levels();
    let topo_pos: Vec<usize> = {
        let mut v = vec![0usize; g.num_tasks()];
        for (i, &n) in g.topo_order().iter().enumerate() {
            v[n.index()] = i;
        }
        v
    };
    let mut listed = vec![false; g.num_tasks()];
    let mut seq = Vec::with_capacity(g.num_tasks());
    for &cpn in &cp {
        let mut anc = Vec::new();
        let mut stack = vec![cpn];
        let mut seen = vec![false; g.num_tasks()];
        while let Some(x) = stack.pop() {
            for &(q, _) in g.preds(x) {
                if !seen[q.index()] && !listed[q.index()] {
                    seen[q.index()] = true;
                    anc.push(q);
                    stack.push(q);
                }
            }
        }
        anc.sort_unstable_by_key(|&n| topo_pos[n.index()]);
        for n in anc {
            listed[n.index()] = true;
            seq.push(n);
        }
        if !listed[cpn.index()] {
            listed[cpn.index()] = true;
            seq.push(cpn);
        }
    }
    let mut rest: Vec<TaskId> = g.tasks().filter(|n| !listed[n.index()]).collect();
    rest.sort_unstable_by_key(|&n| (std::cmp::Reverse(bl[n.index()]), n.0));
    seq.extend(rest);
    seq
}

/// The pre-refactor BSA: serial injection on the pivot, then bubbling
/// migration with a **full replay per candidate** (cloned orders, fresh
/// schedule and network each time). See the module docs; the decision
/// rules are identical to `dagsched_core::apn::Bsa`.
#[derive(Debug, Default, Clone, Copy)]
pub struct BsaBaseline;

impl Scheduler for BsaBaseline {
    fn name(&self) -> &'static str {
        "BSA-baseline"
    }

    fn class(&self) -> AlgoClass {
        AlgoClass::Apn
    }

    fn schedule(&self, g: &TaskGraph, env: &Env) -> Result<Outcome, SchedError> {
        if env.procs() == 0 {
            return Err(SchedError::NoProcessors);
        }
        let topo = &env.topology;
        let procs = topo.num_procs();
        let seq = cpn_dominant_sequence(g);
        let mut seq_pos = vec![0usize; g.num_tasks()];
        for (i, &n) in seq.iter().enumerate() {
            seq_pos[n.index()] = i;
        }

        let pivot = ProcId(0);
        let mut orders: Vec<Vec<TaskId>> = vec![Vec::new(); procs];
        orders[pivot.index()] = seq.clone();
        let mut st = replay_baseline(g, topo, &orders)
            .expect("serial injection follows a topological order");

        for p in topo.bfs_order(pivot) {
            let snapshot = st.s.tasks_on(p);
            for n in snapshot {
                if st.s.proc_of(n) != Some(p) {
                    continue;
                }
                let cur_start = st.s.start_of(n).expect("placed");
                let cur_makespan = st.s.makespan();
                type Candidate = (u64, u64, u32, Vec<Vec<TaskId>>, ApnStateBaseline);
                let mut best: Option<Candidate> = None;
                for &(q, _) in topo.neighbors(p) {
                    let mut trial = orders.clone();
                    trial[p.index()].retain(|&t| t != n);
                    let row = &mut trial[q.index()];
                    let at = row
                        .iter()
                        .position(|&t| seq_pos[t.index()] > seq_pos[n.index()])
                        .unwrap_or(row.len());
                    row.insert(at, n);
                    let Some(cand) = replay_baseline(g, topo, &trial) else {
                        continue;
                    };
                    let ns = cand.s.start_of(n).expect("placed in replay");
                    let nm = cand.s.makespan();
                    if ns <= cur_start && nm <= cur_makespan {
                        let key = (ns, nm, q.0);
                        if best
                            .as_ref()
                            .is_none_or(|(bs, bm, bq, _, _)| key < (*bs, *bm, *bq))
                        {
                            best = Some((ns, nm, q.0, trial, cand));
                        }
                    }
                }
                if let Some((_, _, _, trial, cand)) = best {
                    orders = trial;
                    st = cand;
                }
            }
        }

        drop(st);
        Ok(modern_outcome(g, topo, &orders))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::registry;
    use dagsched_suites::rgnos::{self, RgnosParams};

    /// The incremental BSA must match the replay-per-candidate baseline
    /// exactly: same placements AND the same committed message schedule,
    /// across topologies and CCR regimes.
    #[test]
    fn refactored_bsa_matches_baseline_schedules_and_messages() {
        let bsa = registry::by_name("BSA").unwrap();
        for &(v, ccr, seed) in &[(30usize, 0.5, 1u64), (50, 2.0, 2), (80, 10.0, 3)] {
            let g = rgnos::generate(RgnosParams::new(v, ccr, 3, seed));
            for topo in [
                Topology::chain(4).unwrap(),
                Topology::hypercube(3).unwrap(),
                Topology::mesh(2, 3).unwrap(),
            ] {
                let env = Env::apn(topo.clone());
                let a = BsaBaseline.schedule(&g, &env).unwrap();
                let b = bsa.schedule(&g, &env).unwrap();
                for n in g.tasks() {
                    assert_eq!(
                        a.schedule.placement(n),
                        b.schedule.placement(n),
                        "v={v} ccr={ccr} seed={seed} {:?}: task {n}",
                        topo.kind()
                    );
                }
                let msgs = |o: &Outcome| {
                    let mut m: Vec<_> = o.network.as_ref().unwrap().messages().cloned().collect();
                    m.sort_by_key(|m| (m.src_task, m.dst_task));
                    m
                };
                assert_eq!(
                    msgs(&a),
                    msgs(&b),
                    "v={v} ccr={ccr} seed={seed} {:?}: message schedules diverged",
                    topo.kind()
                );
            }
        }
    }

    /// The incremental priority-queue DSC must be **placement-identical**
    /// to the retained scan version across a multi-thousand-instance RGNOS
    /// sweep — the same discipline that validated the PR-1 and PR-3
    /// overhauls. Sizes × CCRs × parallelisms × seeds = 2250 instances,
    /// plus a paper-scale spot check; any divergence in heap tie-breaking
    /// or t-level bookkeeping would surface as a placement diff here.
    #[test]
    fn incremental_dsc_matches_scan_baseline_across_sweep() {
        let dsc = registry::by_name("DSC").unwrap();
        let env = Env::bnp(1); // UNC algorithms ignore the environment
        let mut instances = 0usize;
        for &v in &[12usize, 25, 40, 60, 90] {
            for &ccr in &[0.1f64, 1.0, 10.0] {
                for &par in &[1u32, 3, 5] {
                    for seed in 0..50u64 {
                        let g = rgnos::generate(RgnosParams::new(v, ccr, par, seed));
                        let a = DscScanBaseline.schedule(&g, &env).unwrap();
                        let b = dsc.schedule(&g, &env).unwrap();
                        for n in g.tasks() {
                            assert_eq!(
                                a.schedule.placement(n),
                                b.schedule.placement(n),
                                "v={v} ccr={ccr} par={par} seed={seed} task {n}"
                            );
                        }
                        instances += 1;
                    }
                }
            }
        }
        // Paper-scale spot check on top of the small-instance sweep.
        for &(v, ccr, seed) in &[(400usize, 1.0f64, 7u64), (400, 0.1, 8)] {
            let g = rgnos::generate(RgnosParams::new(v, ccr, 3, seed));
            let a = DscScanBaseline.schedule(&g, &env).unwrap();
            let b = dsc.schedule(&g, &env).unwrap();
            for n in g.tasks() {
                assert_eq!(
                    a.schedule.placement(n),
                    b.schedule.placement(n),
                    "v={v} ccr={ccr} seed={seed} task {n}"
                );
            }
            instances += 1;
        }
        assert!(instances > 2000, "sweep must stay multi-thousand-instance");
    }

    /// Shared driver for the MD/DCP placement-identity sweeps: the
    /// engine-driven scheduler must match its retained rescan baseline on
    /// every placement across a multi-thousand-instance RGNOS sweep
    /// (sizes × CCRs × parallelisms × seeds + paper-scale spot checks) —
    /// the discipline that validated the PR-1/PR-3/PR-4 overhauls. Any
    /// divergence in the incremental level repair (a missed dirty node, a
    /// wrong sequence-edge rewire) surfaces as a placement diff here.
    fn dyn_levels_sweep(new: &dyn Scheduler, old: &dyn Scheduler) {
        let env = Env::bnp(1); // UNC algorithms ignore the environment
        let mut instances = 0usize;
        for &v in &[12usize, 25, 40, 60, 90] {
            for &ccr in &[0.1f64, 1.0, 10.0] {
                for &par in &[1u32, 3, 5] {
                    for seed in 0..45u64 {
                        let g = rgnos::generate(RgnosParams::new(v, ccr, par, seed));
                        let a = old.schedule(&g, &env).unwrap();
                        let b = new.schedule(&g, &env).unwrap();
                        for n in g.tasks() {
                            assert_eq!(
                                a.schedule.placement(n),
                                b.schedule.placement(n),
                                "{}: v={v} ccr={ccr} par={par} seed={seed} task {n}",
                                new.name(),
                            );
                        }
                        instances += 1;
                    }
                }
            }
        }
        // Paper-scale spot checks on top of the small-instance sweep.
        for &(v, ccr, seed) in &[(300usize, 1.0f64, 7u64), (300, 0.1, 8)] {
            let g = rgnos::generate(RgnosParams::new(v, ccr, 3, seed));
            let a = old.schedule(&g, &env).unwrap();
            let b = new.schedule(&g, &env).unwrap();
            for n in g.tasks() {
                assert_eq!(
                    a.schedule.placement(n),
                    b.schedule.placement(n),
                    "{}: v={v} ccr={ccr} seed={seed} task {n}",
                    new.name(),
                );
            }
            instances += 1;
        }
        assert!(instances > 2000, "sweep must stay multi-thousand-instance");
    }

    /// The engine-driven MD must be **placement-identical** to the
    /// retained per-placement-rescan version across the RGNOS sweep.
    #[test]
    fn incremental_md_matches_scan_baseline_across_sweep() {
        let md = registry::by_name("MD").unwrap();
        dyn_levels_sweep(md.as_ref(), &MdScan);
    }

    /// The engine-driven DCP must be **placement-identical** to the
    /// retained per-placement-rescan version across the RGNOS sweep.
    #[test]
    fn incremental_dcp_matches_scan_baseline_across_sweep() {
        let dcp = registry::by_name("DCP").unwrap();
        dyn_levels_sweep(dcp.as_ref(), &DcpScan);
    }

    /// The retained rescan must carry the same acyclicity hard error as
    /// the engine (correctness fixes hold on both sides of the sweep).
    #[test]
    #[should_panic(expected = "stay acyclic")]
    fn dyn_scan_baseline_rejects_corrupt_schedules() {
        let mut gb = dagsched_graph::GraphBuilder::new();
        let a = gb.add_task(2);
        let b = gb.add_task(3);
        gb.add_edge(a, b, 5).unwrap();
        let g = gb.build().unwrap();
        let mut s = Schedule::new(g.num_tasks(), 1);
        s.place(b, ProcId(0), 0, 3).unwrap();
        s.place(a, ProcId(0), 3, 2).unwrap(); // a after its child: cycle
        let _ = DynScanBaseline::compute(&g, &s);
    }

    /// The refactored DSC must match the baseline schedule exactly — same
    /// makespan, same processor count — on a spread of RGNOS instances.
    #[test]
    fn refactored_dsc_matches_baseline_schedules() {
        let dsc = registry::by_name("DSC").unwrap();
        let env = Env::bnp(1); // UNC algorithms ignore the environment
        for &(v, ccr, seed) in &[
            (60usize, 0.1, 1u64),
            (60, 1.0, 2),
            (120, 1.0, 3),
            (120, 10.0, 4),
        ] {
            let g = rgnos::generate(RgnosParams::new(v, ccr, 3, seed));
            let a = DscBaseline.schedule(&g, &env).unwrap();
            let b = dsc.schedule(&g, &env).unwrap();
            for n in g.tasks() {
                assert_eq!(
                    a.schedule.placement(n),
                    b.schedule.placement(n),
                    "v={v} ccr={ccr} seed={seed} task {n}"
                );
            }
        }
    }
}
