//! Parallel execution of independent experiment cells.
//!
//! The experiment sweeps are embarrassingly parallel across (algorithm ×
//! graph) cells: every cell derives its graph from its own seed and shares
//! nothing but immutable algorithm objects ([`dagsched_core::Scheduler`] is
//! `Sync` by trait bound). `rayon` would be the natural executor, but the
//! build environment has no registry access, so this module provides the
//! one primitive the harness needs — an order-preserving [`parallel_map`] —
//! on `std::thread::scope` with an atomic work index. Swap the body for
//! `rayon::par_iter` when building online; the call sites won't change.
//!
//! **Timing honesty:** per-run wall-clock measurements (Table 6, the
//! criterion benches, `perf_baseline`) stay on a single thread — only
//! quality metrics (makespan, NSL, processors used) are collected from
//! parallel sweeps, so the paper's runtime tables are never polluted by
//! scheduler contention.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count: `TASKBENCH_THREADS` when set to a positive number,
/// otherwise all available cores. `TASKBENCH_THREADS=1` forces the serial
/// path (useful for debugging and for timing comparisons).
pub fn worker_count() -> usize {
    match std::env::var("TASKBENCH_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Apply `f` to every item on `workers` scoped threads, returning results
/// in input order. A panic in any worker propagates after the scope joins.
pub fn parallel_map_with<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each index taken once");
                let r = f(item);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// [`parallel_map_with`] using [`worker_count`] workers.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(worker_count(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map_with(4, (0..100u64).collect(), |x| x * 2);
        assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches() {
        let items: Vec<u64> = (0..17).collect();
        assert_eq!(
            parallel_map_with(1, items.clone(), |x| x + 1),
            parallel_map_with(8, items, |x| x + 1)
        );
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(
            parallel_map_with(4, Vec::<u32>::new(), |x| x),
            Vec::<u32>::new()
        );
        assert_eq!(parallel_map_with(4, vec![9u32], |x| x), vec![9]);
    }

    #[test]
    fn scheduling_cells_in_parallel_matches_serial_results() {
        use dagsched_core::{registry, Env};
        use dagsched_suites::rgnos::{self, RgnosParams};
        let algos = registry::bnp();
        let cells: Vec<(usize, u64)> = (0..algos.len())
            .flat_map(|ai| (0..3u64).map(move |seed| (ai, seed)))
            .collect();
        let run = |(ai, seed): (usize, u64)| {
            let g = rgnos::generate(RgnosParams::new(40, 1.0, 2, seed));
            let env = Env::bnp(8);
            algos[ai].schedule(&g, &env).unwrap().schedule.makespan()
        };
        let serial = parallel_map_with(1, cells.clone(), run);
        let parallel = parallel_map_with(4, cells, run);
        assert_eq!(serial, parallel);
    }
}
