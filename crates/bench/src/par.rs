//! Parallel execution of independent experiment cells.
//!
//! The experiment sweeps are embarrassingly parallel across (algorithm ×
//! graph) cells: every cell derives its graph from its own seed and shares
//! nothing but immutable algorithm objects ([`dagsched_core::Scheduler`] is
//! `Sync` by trait bound). The executor is the workspace's work-stealing
//! runtime ([`crate::ws`], i.e. `dagsched-ws`): items are dealt into
//! per-worker deques up front and idle workers steal, so one slow cell (a
//! 32-processor DLS run, a branch-and-bound reference solve) no longer
//! pins its static share of the sweep behind it — and the per-item
//! `Mutex<Option<T>>` slot handshake of the old static-split runner is
//! gone from the hot loop entirely. Results still come back in input
//! order, so every fold downstream is byte-deterministic across runs and
//! thread counts.
//!
//! **Timing honesty:** per-run wall-clock measurements (Table 6, the
//! criterion benches, `perf_baseline`) stay on a single thread — only
//! quality metrics (makespan, NSL, processors used) are collected from
//! parallel sweeps, so the paper's runtime tables are never polluted by
//! scheduler contention.

/// Worker count: `TASKBENCH_THREADS` when set (`0` or `1` = explicit
/// serial), otherwise all available cores. Re-exported from
/// [`dagsched_ws::worker_count`]; panics on unparsable values.
pub use dagsched_ws::worker_count;

/// Apply `f` to every item on `workers` work-stealing threads, returning
/// results in input order. A panic in any worker propagates after the pool
/// joins. See [`dagsched_ws::parallel_map_with`].
pub use dagsched_ws::parallel_map_with;

/// [`parallel_map_with`] using [`worker_count`] workers.
pub use dagsched_ws::parallel_map;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map_with(4, (0..100u64).collect(), |x| x * 2);
        assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches() {
        let items: Vec<u64> = (0..17).collect();
        assert_eq!(
            parallel_map_with(1, items.clone(), |x| x + 1),
            parallel_map_with(8, items, |x| x + 1)
        );
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(
            parallel_map_with(4, Vec::<u32>::new(), |x| x),
            Vec::<u32>::new()
        );
        assert_eq!(parallel_map_with(4, vec![9u32], |x| x), vec![9]);
    }

    #[test]
    fn scheduling_cells_in_parallel_matches_serial_results() {
        use dagsched_core::{registry, Env};
        use dagsched_suites::rgnos::{self, RgnosParams};
        let algos = registry::bnp();
        let cells: Vec<(usize, u64)> = (0..algos.len())
            .flat_map(|ai| (0..3u64).map(move |seed| (ai, seed)))
            .collect();
        let run = |(ai, seed): (usize, u64)| {
            let g = rgnos::generate(RgnosParams::new(40, 1.0, 2, seed));
            let env = Env::bnp(8);
            algos[ai].schedule(&g, &env).unwrap().schedule.makespan()
        };
        let serial = parallel_map_with(1, cells.clone(), run);
        let parallel = parallel_map_with(4, cells, run);
        assert_eq!(serial, parallel);
    }
}
