#![forbid(unsafe_code)]
//! # dagsched-bench — the experiment harness
//!
//! One binary per table and figure of Kwok & Ahmad (IPPS 1998), §6:
//!
//! | Binary | Reproduces |
//! |--------|------------|
//! | `table1_psg` | Table 1 — schedule lengths of UNC+BNP algorithms on the Peer Set Graphs |
//! | `table2_rgbos_unc` | Table 2 — % degradation from branch-and-bound optimal, RGBOS, UNC |
//! | `table3_rgbos_bnp` | Table 3 — % degradation from branch-and-bound optimal, RGBOS, BNP |
//! | `table4_rgpos_unc` | Table 4 — % degradation from constructed optimal, RGPOS, UNC |
//! | `table5_rgpos_bnp` | Table 5 — % degradation from constructed optimal, RGPOS, BNP |
//! | `table6_runtimes` | Table 6 — average running times on RGNOS |
//! | `fig2_nsl_rgnos` | Fig. 2(a–c) — average NSL vs graph size per class |
//! | `fig3_procs_rgnos` | Fig. 3(a–b) — average processors used vs graph size |
//! | `fig4_cholesky` | Fig. 4(a–c) — average NSL on Cholesky traced graphs |
//! | `apn_topology` | §6.4 text — topology sensitivity of the APN class |
//! | `ablations` | design-choice ablations the paper's conclusions call out |
//! | `run_all` | everything above, streamed to stdout |
//!
//! Every experiment is deterministic given the seed. Two knobs, via
//! environment variables:
//!
//! * `TASKBENCH_FULL=1` — paper-scale sample counts (slower);
//! * `TASKBENCH_SEED=<u64>` — alternative master seed (default
//!   `0x1998`, the publication year).

pub mod baseline;
pub mod config;
pub mod experiments;
pub mod par;
pub mod preobs;
pub mod report;
pub mod runner;
pub mod ws;

pub use config::Config;
pub use runner::{run_timed, RunRecord};
