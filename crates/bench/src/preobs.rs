//! Retained **pre-instrumentation** copies of the observability PR's hot
//! paths, frozen at the revision immediately before `dagsched-obs` landed.
//!
//! The zero-cost claim — disabled tracing and hot-path counters cost ≤2% —
//! cannot be checked against the instrumented code itself: with the
//! [`dagsched_obs::NullSink`] the events are *supposed* to compile away,
//! so the only honest baseline is the code as it was before the `Sink`
//! parameters, `emit!` sites and counter fields existed. This module keeps
//! those copies verbatim (modulo the deletions themselves):
//!
//! * [`PreObsHeap`] — [`dagsched_core::common::IndexedHeap`] without the
//!   `HeapOps` counter fields;
//! * [`DscPreObs`] — the DSC engine of PR 4 (same two-heap structure as
//!   today's `unc::dsc`) with no sink parameter and no counter flush;
//! * [`bnb_solve_serial`] — the serial branch-and-bound of PR 6: same
//!   `State`/bounds/signature code, undivided prune counter, no events.
//!
//! `perf_baseline`'s `trace_overhead` section times these against the
//! production paths on the same instances and asserts the ratio; the
//! placement/counter identity asserts double as a freshness check — if the
//! production algorithm changes behaviour, the frozen copy fails loudly
//! and must be re-frozen in the same PR.

use dagsched_core::{registry, AlgoClass, Env, Outcome, SchedError, Scheduler};
use dagsched_graph::{levels, TaskGraph, TaskId};
use dagsched_platform::{ProcId, Schedule};
use std::cell::{Cell, RefCell};
use std::collections::HashSet;

// ---------------------------------------------------------------------------
// Counter-free indexed heap (pre-PR-7 IndexedHeap)
// ---------------------------------------------------------------------------

const ABSENT: u32 = u32::MAX;

/// The rekeyable indexed max-heap exactly as it stood before the `HeapOps`
/// counters: same layout, same tie-break (max key, ties toward the
/// smallest handle), no bookkeeping.
#[derive(Debug, Clone)]
pub struct PreObsHeap<K: Ord + Copy> {
    heap: Vec<u32>,
    pos: Vec<u32>,
    keys: Vec<Option<K>>,
}

impl<K: Ord + Copy> PreObsHeap<K> {
    pub fn new(capacity: usize) -> PreObsHeap<K> {
        PreObsHeap {
            heap: Vec::with_capacity(capacity),
            pos: vec![ABSENT; capacity],
            keys: vec![None; capacity],
        }
    }

    #[inline]
    pub fn contains(&self, handle: u32) -> bool {
        self.pos[handle as usize] != ABSENT
    }

    pub fn insert(&mut self, handle: u32, key: K) {
        assert!(
            !self.contains(handle),
            "insert: handle {handle} already in the heap"
        );
        self.keys[handle as usize] = Some(key);
        let slot = self.heap.len();
        self.heap.push(handle);
        self.pos[handle as usize] = slot as u32;
        self.sift_up(slot);
    }

    pub fn peek_max(&self) -> Option<u32> {
        self.heap.first().copied()
    }

    pub fn pop_max(&mut self) -> Option<u32> {
        let top = *self.heap.first()?;
        self.remove(top);
        Some(top)
    }

    pub fn remove(&mut self, handle: u32) {
        let slot = self.pos[handle as usize];
        assert!(slot != ABSENT, "remove: handle {handle} not in the heap");
        let slot = slot as usize;
        let last = self.heap.len() - 1;
        self.heap.swap(slot, last);
        self.pos[self.heap[slot] as usize] = slot as u32;
        self.heap.pop();
        self.pos[handle as usize] = ABSENT;
        self.keys[handle as usize] = None;
        if slot < self.heap.len() {
            let moved = slot;
            if !self.sift_up(moved) {
                self.sift_down(moved);
            }
        }
    }

    pub fn increase_key(&mut self, handle: u32, key: K) {
        debug_assert!(
            self.pos[handle as usize] != ABSENT
                && self.keys[handle as usize].is_some_and(|old| key >= old),
            "increase_key: key must not decrease"
        );
        self.keys[handle as usize] = Some(key);
        self.sift_up(self.pos[handle as usize] as usize);
    }

    #[inline]
    fn outranks(&self, a: u32, b: u32) -> bool {
        let (ka, kb) = (self.keys[a as usize], self.keys[b as usize]);
        debug_assert!(ka.is_some() && kb.is_some());
        match ka.cmp(&kb) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => a < b,
        }
    }

    fn sift_up(&mut self, mut slot: usize) -> bool {
        let mut moved = false;
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if !self.outranks(self.heap[slot], self.heap[parent]) {
                break;
            }
            self.heap.swap(slot, parent);
            self.pos[self.heap[slot] as usize] = slot as u32;
            self.pos[self.heap[parent] as usize] = parent as u32;
            slot = parent;
            moved = true;
        }
        moved
    }

    fn sift_down(&mut self, mut slot: usize) {
        loop {
            let (l, r) = (2 * slot + 1, 2 * slot + 2);
            let mut best = slot;
            if l < self.heap.len() && self.outranks(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.outranks(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == slot {
                break;
            }
            self.heap.swap(slot, best);
            self.pos[self.heap[slot] as usize] = slot as u32;
            self.pos[self.heap[best] as usize] = best as u32;
            slot = best;
        }
    }
}

// ---------------------------------------------------------------------------
// Pre-obs DSC (PR 4's heap engine, no sink / no counters)
// ---------------------------------------------------------------------------

/// The incremental-priority-queue DSC exactly as shipped by PR 4: same
/// selection rule, DSRW guard and edge relaxation as today's `unc::dsc`,
/// with no trace sink and no heap-operation counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct DscPreObs;

impl Scheduler for DscPreObs {
    fn name(&self) -> &'static str {
        "DSC-preobs"
    }

    fn class(&self) -> AlgoClass {
        AlgoClass::Unc
    }

    fn schedule(&self, g: &TaskGraph, _env: &Env) -> Result<Outcome, SchedError> {
        let v = g.num_tasks();
        let bl = g.levels().b_levels();
        let mut s = Schedule::new(v, v);
        let mut tlevel = vec![0u64; v];
        let mut missing: Vec<u32> = g.tasks().map(|n| g.in_degree(n) as u32).collect();
        let mut free: PreObsHeap<u64> = PreObsHeap::new(v);
        for n in g.entries() {
            free.insert(n.0, bl[n.index()]);
        }
        let mut partial: PreObsHeap<u64> = PreObsHeap::new(v);
        let mut next_fresh = 0u32;

        while let Some(h) = free.pop_max() {
            let nf = TaskId(h);
            let pfp = partial.peek_max().map(TaskId);

            let mut best: Option<(u64, ProcId)> = None;
            let mut parent_procs: Vec<ProcId> = g
                .preds(nf)
                .iter()
                .filter_map(|&(q, _)| s.proc_of(q))
                .collect();
            parent_procs.sort_unstable();
            parent_procs.dedup();
            for &p in &parent_procs {
                let start = append_start(g, &s, nf, p);
                if best.is_none_or(|(bs, bp)| start < bs || (start == bs && p < bp)) {
                    best = Some((start, p));
                }
            }

            let mut placed = false;
            if let Some((start, p)) = best {
                if start < tlevel[nf.index()] {
                    let dsrw_ok = match pfp {
                        Some(pf) if priority(pf, &tlevel, bl) > priority(nf, &tlevel, bl) => {
                            let before = append_start(g, &s, pf, p);
                            s.place(nf, p, start, g.weight(nf))
                                .expect("append start is free");
                            let after = append_start(g, &s, pf, p);
                            s.unplace(nf);
                            after <= before
                        }
                        _ => true,
                    };
                    if dsrw_ok {
                        s.place(nf, p, start, g.weight(nf))
                            .expect("append start is free");
                        tlevel[nf.index()] = start;
                        placed = true;
                    }
                }
            }
            if !placed {
                while !s.timeline(ProcId(next_fresh)).is_empty() {
                    next_fresh += 1;
                }
                let p = ProcId(next_fresh);
                let start = tlevel[nf.index()];
                s.place(nf, p, start, g.weight(nf))
                    .expect("fresh cluster is idle");
            }

            let fin = s.finish_of(nf).expect("just placed");
            for &(c, cost) in g.succs(nf) {
                let ci = c.index();
                if fin + cost > tlevel[ci] {
                    tlevel[ci] = fin + cost;
                    if partial.contains(c.0) {
                        partial.increase_key(c.0, tlevel[ci] + bl[ci]);
                    }
                }
                missing[ci] -= 1;
                if missing[ci] == 0 {
                    if partial.contains(c.0) {
                        partial.remove(c.0);
                    }
                    free.insert(c.0, tlevel[ci] + bl[ci]);
                } else if !partial.contains(c.0) {
                    partial.insert(c.0, tlevel[ci] + bl[ci]);
                }
            }
        }

        Ok(Outcome {
            schedule: s,
            network: None,
        })
    }
}

#[inline]
fn priority(n: TaskId, tlevel: &[u64], bl: &[u64]) -> u64 {
    tlevel[n.index()] + bl[n.index()]
}

fn append_start(g: &TaskGraph, s: &Schedule, n: TaskId, p: ProcId) -> u64 {
    let mut drt = 0u64;
    for &(q, c) in g.preds(n) {
        if let Some(pl) = s.placement(q) {
            let cost = if pl.proc == p { 0 } else { c };
            drt = drt.max(pl.finish + cost);
        }
    }
    s.timeline(p).earliest_append(drt)
}

// ---------------------------------------------------------------------------
// Pre-obs serial branch-and-bound (PR 6's search, no sink / one prune cell)
// ---------------------------------------------------------------------------

/// What the pre-obs serial search reports: the same numbers as
/// [`dagsched_optimal::OptimalResult`] before the per-bound prune split.
#[derive(Debug, Clone)]
pub struct PreObsBnb {
    pub length: u64,
    pub proven: bool,
    pub nodes_expanded: u64,
    pub pruned: u64,
}

struct BnbState<'g> {
    g: &'g TaskGraph,
    procs: usize,
    weights: Vec<u64>,
    slc: Vec<u64>,
    proc_ready: Vec<u64>,
    finish: Vec<u64>,
    proc_of: Vec<u8>,
    scheduled: Vec<bool>,
    missing: Vec<u32>,
    ready: Vec<TaskId>,
    n_scheduled: usize,
    makespan: u64,
    total_remaining: u64,
    current: Vec<(ProcId, u64)>,
}

impl<'g> BnbState<'g> {
    fn new(g: &'g TaskGraph, procs: usize) -> BnbState<'g> {
        let v = g.num_tasks();
        BnbState {
            g,
            procs,
            weights: g.weights().to_vec(),
            slc: levels::static_levels(g),
            proc_ready: vec![0; procs],
            finish: vec![0; v],
            proc_of: vec![u8::MAX; v],
            scheduled: vec![false; v],
            missing: g.tasks().map(|n| g.in_degree(n) as u32).collect(),
            ready: g.entries().collect(),
            n_scheduled: 0,
            makespan: 0,
            total_remaining: g.total_work(),
            current: vec![(ProcId(0), 0); v],
        }
    }

    fn complete(&self) -> bool {
        self.n_scheduled == self.g.num_tasks()
    }

    fn est(&self, n: TaskId, p: ProcId) -> u64 {
        let mut drt = 0u64;
        for &(q, c) in self.g.preds(n) {
            let arrive = if self.proc_of[q.index()] as u32 == p.0 {
                self.finish[q.index()]
            } else {
                self.finish[q.index()] + c
            };
            drt = drt.max(arrive);
        }
        drt.max(self.proc_ready[p.index()])
    }

    fn ordered_moves(&self) -> Vec<(TaskId, u64, u32)> {
        let mut tasks: Vec<TaskId> = self.ready.clone();
        tasks.sort_unstable_by_key(|&n| (std::cmp::Reverse(self.slc[n.index()]), n.0));
        let mut all = Vec::with_capacity(tasks.len() * self.procs);
        for n in tasks {
            let mut opened_empty = false;
            let mut moves: Vec<(u64, u32)> = Vec::with_capacity(self.procs);
            for pi in 0..self.procs as u32 {
                let empty =
                    self.proc_ready[pi as usize] == 0 && !self.proc_of.contains(&(pi as u8));
                if empty {
                    if opened_empty {
                        continue;
                    }
                    opened_empty = true;
                }
                let start = self.est(n, ProcId(pi));
                moves.push((start, pi));
            }
            moves.sort_unstable();
            for (start, pi) in moves {
                all.push((n, start, pi));
            }
        }
        all
    }

    fn apply(&mut self, n: TaskId, p: ProcId, start: u64) {
        let fin = start + self.weights[n.index()];
        self.current[n.index()] = (p, start);
        self.proc_of[n.index()] = p.0 as u8;
        self.finish[n.index()] = fin;
        self.scheduled[n.index()] = true;
        self.proc_ready[p.index()] = fin;
        self.makespan = self.makespan.max(fin);
        self.total_remaining -= self.weights[n.index()];
        self.n_scheduled += 1;
        let pos = self
            .ready
            .iter()
            .position(|&r| r == n)
            .expect("n was ready");
        self.ready.swap_remove(pos);
        for &(c, _) in self.g.succs(n) {
            self.missing[c.index()] -= 1;
            if self.missing[c.index()] == 0 {
                self.ready.push(c);
            }
        }
    }

    fn undo(&mut self, n: TaskId, p: ProcId, start: u64) {
        for &(c, _) in self.g.succs(n) {
            if self.missing[c.index()] == 0 {
                let pos = self
                    .ready
                    .iter()
                    .position(|&r| r == c)
                    .expect("child was ready");
                self.ready.swap_remove(pos);
            }
            self.missing[c.index()] += 1;
        }
        self.ready.push(n);
        self.n_scheduled -= 1;
        self.total_remaining += self.weights[n.index()];
        self.scheduled[n.index()] = false;
        self.proc_of[n.index()] = u8::MAX;
        let _ = start;
        let mut pr = 0u64;
        for t in self.g.tasks() {
            if self.scheduled[t.index()] && self.proc_of[t.index()] as u32 == p.0 {
                pr = pr.max(self.finish[t.index()]);
            }
        }
        self.proc_ready[p.index()] = pr;
        let mut m = 0u64;
        for t in self.g.tasks() {
            if self.scheduled[t.index()] {
                m = m.max(self.finish[t.index()]);
            }
        }
        self.makespan = m;
    }

    fn lower_bound(&self) -> u64 {
        let mut lb = self.makespan;
        let busy: u64 = self.proc_ready.iter().sum();
        lb = lb.max((busy + self.total_remaining).div_ceil(self.procs as u64));
        let mut ees = vec![0u64; self.g.num_tasks()];
        let mut cp_bound = 0u64;
        for &n in self.g.topo_order() {
            if self.scheduled[n.index()] {
                continue;
            }
            let mut start = 0u64;
            for &(q, _) in self.g.preds(n) {
                let t = if self.scheduled[q.index()] {
                    self.finish[q.index()]
                } else {
                    ees[q.index()] + self.weights[q.index()]
                };
                start = start.max(t);
            }
            ees[n.index()] = start;
            cp_bound = cp_bound.max(start + self.slc[n.index()]);
        }
        lb.max(cp_bound)
    }

    fn signature(&self) -> u128 {
        let mut first_task = vec![u32::MAX; self.procs];
        for t in self.g.tasks() {
            let p = self.proc_of[t.index()];
            if p != u8::MAX {
                let slot = &mut first_task[p as usize];
                *slot = (*slot).min(t.0);
            }
        }
        let mut order: Vec<usize> = (0..self.procs).collect();
        order.sort_unstable_by_key(|&p| first_task[p]);
        let mut canon = vec![u8::MAX; self.procs];
        for (rank, &p) in order.iter().enumerate() {
            canon[p] = rank as u8;
        }
        let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
        let mut h2: u64 = 0x9e37_79b9_7f4a_7c15;
        let fold = |h: &mut u64, x: u64, prime: u64| {
            *h ^= x;
            *h = h.wrapping_mul(prime);
        };
        for t in self.g.tasks() {
            if self.scheduled[t.index()] {
                let p = canon[self.proc_of[t.index()] as usize] as u64;
                let key = (t.0 as u64) << 40 | p << 32 | self.current[t.index()].1;
                fold(&mut h1, key, 0x0000_0100_0000_01B3);
                fold(&mut h2, key, 0xff51_afd7_ed55_8ccd);
            }
        }
        (h1 as u128) << 64 | h2 as u128
    }
}

fn canon_key(placements: &[(ProcId, u64)], procs: usize) -> Vec<(u8, u64)> {
    let mut rank = vec![u8::MAX; procs];
    let mut next = 0u8;
    let mut key = Vec::with_capacity(placements.len());
    for &(p, start) in placements {
        let r = &mut rank[p.index()];
        if *r == u8::MAX {
            *r = next;
            next += 1;
        }
        key.push((*r, start));
    }
    key
}

struct PreObsCtl {
    best_len: Cell<u64>,
    best: RefCell<Vec<(ProcId, u64)>>,
    best_key: RefCell<Option<Vec<(u8, u64)>>>,
    nodes: Cell<u64>,
    pruned: Cell<u64>,
    node_limit: u64,
    capped: Cell<bool>,
}

impl PreObsCtl {
    fn offer(&self, len: u64, placements: &[(ProcId, u64)], procs: usize) {
        let cur = self.best_len.get();
        if len > cur {
            return;
        }
        let key = canon_key(placements, procs);
        let better = len < cur
            || match &*self.best_key.borrow() {
                None => true,
                Some(k) => key < *k,
            };
        if better {
            self.best_len.set(len);
            self.best.borrow_mut().copy_from_slice(placements);
            *self.best_key.borrow_mut() = Some(key);
        }
    }

    fn note_expanded(&self) -> bool {
        if self.nodes.get() >= self.node_limit {
            self.capped.set(true);
            return false;
        }
        self.nodes.set(self.nodes.get() + 1);
        true
    }
}

fn dfs(state: &mut BnbState<'_>, seen: &mut HashSet<u128>, ctl: &PreObsCtl) {
    if !ctl.note_expanded() {
        return;
    }
    if state.complete() {
        ctl.offer(state.makespan, &state.current, state.procs);
        return;
    }
    if state.lower_bound() >= ctl.best_len.get() {
        ctl.pruned.set(ctl.pruned.get() + 1);
        return;
    }
    if !seen.insert(state.signature()) {
        ctl.pruned.set(ctl.pruned.get() + 1);
        return;
    }
    for (n, start, pi) in state.ordered_moves() {
        state.apply(n, ProcId(pi), start);
        dfs(state, seen, ctl);
        state.undo(n, ProcId(pi), start);
        if ctl.capped.get() {
            return;
        }
    }
}

/// The serial branch-and-bound exactly as PR 6 shipped it: heuristic
/// incumbent from the registry roster, then the uninstrumented DFS. Same
/// expansion order and bound tests as `dagsched_optimal::solve` with
/// `threads = Some(1)`, so `nodes_expanded` and `pruned` must match the
/// production counters exactly.
pub fn bnb_solve_serial(g: &TaskGraph, procs: usize, node_limit: u64) -> PreObsBnb {
    let v = g.num_tasks();
    assert!(v <= 64, "branch-and-bound supports at most 64 tasks");
    let procs = procs.min(v).max(1);

    let mut best_len = u64::MAX;
    let mut best: Vec<(ProcId, u64)> = vec![(ProcId(0), 0); v];
    let env = Env::bnp(procs);
    for algo in registry::bnp().into_iter().chain(registry::unc()) {
        if let Ok(out) = algo.schedule(g, &env) {
            if out.schedule.procs_used() <= procs {
                let m = out.schedule.makespan();
                if m < best_len {
                    best_len = m;
                    let compact = out.schedule.compact_procs();
                    for n in g.tasks() {
                        let pl = compact.placement(n).expect("complete");
                        best[n.index()] = (pl.proc, pl.start);
                    }
                }
            }
        }
    }

    let ctl = PreObsCtl {
        best_key: RefCell::new((best_len != u64::MAX).then(|| canon_key(&best, procs))),
        best_len: Cell::new(best_len),
        best: RefCell::new(best),
        nodes: Cell::new(0),
        pruned: Cell::new(0),
        node_limit,
        capped: Cell::new(false),
    };
    let mut state = BnbState::new(g, procs);
    let mut seen = HashSet::new();
    dfs(&mut state, &mut seen, &ctl);
    PreObsBnb {
        length: ctl.best_len.get(),
        proven: !ctl.capped.get(),
        nodes_expanded: ctl.nodes.get(),
        pruned: ctl.pruned.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_optimal::{solve, OptimalParams};
    use dagsched_suites::rgnos::{self, RgnosParams};

    #[test]
    fn preobs_dsc_is_placement_identical_to_production() {
        // The freshness check: the frozen copy must still compute the
        // exact schedule of today's instrumented DSC.
        let dsc = registry::by_name("DSC").unwrap();
        let env = Env::bnp(1);
        for seed in [7u64, 42] {
            let g = rgnos::generate(RgnosParams::new(300, 1.0, 3, seed));
            let a = DscPreObs.schedule(&g, &env).unwrap();
            let b = dsc.schedule(&g, &env).unwrap();
            for n in g.tasks() {
                assert_eq!(
                    a.schedule.placement(n),
                    b.schedule.placement(n),
                    "pre-obs DSC diverged on seed {seed} task {n}"
                );
            }
        }
    }

    #[test]
    fn preobs_bnb_counters_match_production_serial() {
        for seed in [5u64, 42] {
            let g = rgnos::generate(RgnosParams::new(12, 1.0, 3, seed));
            let pre = bnb_solve_serial(&g, 3, 4_000_000);
            let prod = solve(
                &g,
                &OptimalParams {
                    procs: Some(3),
                    threads: Some(1),
                    ..OptimalParams::default()
                },
            );
            assert!(pre.proven && prod.proven);
            assert_eq!(pre.length, prod.length, "seed {seed}");
            assert_eq!(pre.nodes_expanded, prod.nodes_expanded, "seed {seed}");
            assert_eq!(pre.pruned, prod.pruned, "seed {seed}");
        }
    }
}
