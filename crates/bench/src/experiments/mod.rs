//! One module per experiment; every `run` function returns renderable
//! [`dagsched_metrics::Table`]s so the thin binaries and `run_all` share
//! identical code paths.

pub mod ablate;
pub mod figs;
pub mod rgbos;
pub mod rgpos;
pub mod table1;
pub mod table6;
pub mod topology;
pub mod unc_cs;

use dagsched_metrics::Table;

/// Print tables to stdout with blank lines between them.
pub fn print_tables(tables: &[Table]) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for t in tables {
        let _ = writeln!(lock, "{}", t.ascii());
    }
}
