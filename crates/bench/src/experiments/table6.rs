//! Table 6 — average running times of all fifteen algorithms on the RGNOS
//! benchmarks (§6.4.3).
//!
//! The paper reports seconds on a SPARC IPX; absolute values are three
//! orders of magnitude apart from a modern CPU, so the *ranking* is the
//! reproduction target (MCP fastest / ETF & DLS slowest within BNP; LC
//! fastest / MD slowest within UNC; BU fastest / DLS slowest within APN).
//! Cells are milliseconds.
//!
//! Unlike the quality sweeps, this experiment deliberately stays
//! **serial**: its whole point is wall-clock running time per algorithm,
//! and running cells concurrently would let scheduler contention and cache
//! pressure pollute the numbers.

use dagsched_core::{registry, Env};
use dagsched_metrics::{Running, Table};
use dagsched_suites::rgnos::{self, RgnosParams};

use crate::runner::run_timed;
use crate::Config;

/// Build Table 6.
pub fn run(cfg: &Config) -> Vec<Table> {
    let algos = registry::all();
    let names: Vec<&'static str> = algos.iter().map(|a| a.name()).collect();
    let mut header: Vec<&str> = vec!["v"];
    header.extend(names.iter().copied());
    let mut t = Table::new(
        "Table 6: average running times (ms) on RGNOS — 6 BNP | 5 UNC | 4 APN",
        &header,
    );
    let apn_env = Env::apn(cfg.apn_topology());
    for (si, v) in cfg.rgnos_sizes().into_iter().enumerate() {
        let mut means: Vec<Running> = vec![Running::new(); algos.len()];
        for (pi, (ccr, par)) in cfg.rgnos_points().into_iter().enumerate() {
            let seed = cfg
                .seed
                .wrapping_mul(0xA076_1D64_78BD_642F)
                .wrapping_add((si * 1000 + pi) as u64);
            let g = rgnos::generate(RgnosParams::new(v, ccr, par, seed));
            let bnp_env = Env::bnp(cfg.bnp_unlimited_procs(v));
            for (ai, algo) in algos.iter().enumerate() {
                let env = match algo.class() {
                    dagsched_core::AlgoClass::Apn => &apn_env,
                    _ => &bnp_env,
                };
                let rec = run_timed(algo.as_ref(), &g, env);
                means[ai].push(rec.elapsed.as_secs_f64() * 1e3);
            }
        }
        let mut row = vec![v.to_string()];
        row.extend(means.iter().map(|r| format!("{:.2}", r.mean())));
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fifteen_algorithms_timed() {
        // Minimal smoke run at one small size so CI stays fast.
        let cfg = Config::quick(3);
        let g = rgnos::generate(RgnosParams::new(50, 1.0, 3, 1));
        let bnp_env = Env::bnp(cfg.bnp_unlimited_procs(50));
        let apn_env = Env::apn(cfg.apn_topology());
        for algo in registry::all() {
            let env = match algo.class() {
                dagsched_core::AlgoClass::Apn => &apn_env,
                _ => &bnp_env,
            };
            let rec = run_timed(algo.as_ref(), &g, env);
            assert!(rec.makespan > 0, "{}", algo.name());
        }
    }
}
