//! The study the paper's conclusions propose (§7): **BNP vs UNC+CS** —
//! clustering algorithms followed by a cluster-scheduling pass onto a
//! bounded machine, compared against the native BNP algorithms on the same
//! machine.

use dagsched_core::unc::{ClusterMapping, Dcp, Dsc, Ez, Lc, Md, UncCs};
use dagsched_core::{registry, Env, Scheduler};
use dagsched_metrics::{table::f2, Running, Table};
use dagsched_suites::rgnos::RgnosParams;

use crate::runner::run_timed;
use crate::Config;

const PROCS: usize = 8;

fn sample(cfg: &Config) -> Vec<dagsched_graph::TaskGraph> {
    let sizes: &[usize] = if cfg.full {
        &[50, 100, 200, 300]
    } else {
        &[50, 100]
    };
    let mut out = Vec::new();
    for (si, &v) in sizes.iter().enumerate() {
        for (pi, (ccr, par)) in cfg.rgnos_points().into_iter().enumerate() {
            let seed = cfg
                .seed
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                .wrapping_add((si * 1000 + pi) as u64);
            out.push(dagsched_suites::rgnos::generate(RgnosParams::new(
                v, ccr, par, seed,
            )));
        }
    }
    out
}

/// Build the BNP vs UNC+CS comparison table (avg NSL on 8 processors).
pub fn run(cfg: &Config) -> Vec<Table> {
    let graphs = sample(cfg);
    let env = Env::bnp(PROCS);
    let mut t = Table::new(
        format!("BNP vs UNC+CS on {PROCS} processors (avg NSL, RGNOS sample)"),
        &["scheduler", "avg NSL", "avg makespan"],
    );

    let eval = |label: String, algo: &dyn Scheduler| {
        let mut nsl = Running::new();
        let mut mk = Running::new();
        for g in &graphs {
            let rec = run_timed(algo, g, &env);
            nsl.push(rec.nsl);
            mk.push(rec.makespan as f64);
        }
        (label, nsl.mean(), mk.mean())
    };

    let mut rows = Vec::new();
    for algo in registry::bnp() {
        rows.push(eval(format!("{} (BNP)", algo.name()), algo.as_ref()));
    }
    macro_rules! cs {
        ($inner:expr, $name:literal) => {
            for (mlabel, mapping) in [
                ("Sarkar", ClusterMapping::Sarkar),
                ("RCP", ClusterMapping::Rcp),
            ] {
                let adapter = UncCs {
                    inner: $inner,
                    mapping,
                };
                rows.push(eval(format!("{}+CS/{} ", $name, mlabel), &adapter));
            }
        };
    }
    cs!(Ez, "EZ");
    cs!(Lc, "LC");
    cs!(Dsc, "DSC");
    cs!(Md, "MD");
    cs!(Dcp::default(), "DCP");

    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("NSL is finite"));
    for (label, nsl, mk) in rows {
        t.row(vec![label, f2(nsl), format!("{mk:.0}")]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unc_cs_table_covers_all_sixteen_entries() {
        let cfg = Config::quick(9);
        // Shrink the sample by hand for test speed: one graph.
        let g = dagsched_suites::rgnos::generate(RgnosParams::new(40, 1.0, 2, 1));
        let env = Env::bnp(4);
        let adapter = UncCs {
            inner: Dcp::default(),
            mapping: ClusterMapping::Sarkar,
        };
        let rec = run_timed(&adapter, &g, &env);
        assert!(rec.procs_used <= 4);
        assert!(rec.nsl >= 1.0);
        let _ = cfg;
    }
}
