//! Tables 2 & 3 — percentage degradations from the branch-and-bound
//! optimal solutions on the RGBOS benchmarks (§6.2).
//!
//! One sub-table per CCR ∈ {0.1, 1.0, 10.0}; rows are graph sizes 10…32,
//! columns the class's algorithms. The last three rows reproduce the
//! paper's summary lines — number of optimal solutions generated, average
//! degradation — plus one extra honesty row: for how many instances the
//! branch-and-bound *proved* optimality within its node budget (unproven
//! reference values are best-known bounds; see DESIGN.md).

use dagsched_core::{registry, AlgoClass, Env};
use dagsched_metrics::{measures, table::f1, Running, Table};
use dagsched_optimal::{solve, OptimalParams};
use dagsched_suites::rgbos::{self, RgbosParams};

use crate::par::parallel_map;
use crate::runner::run_timed;
use crate::Config;

/// Build Table 2 (`class = Unc`) or Table 3 (`class = Bnp`).
///
/// Every (CCR, size) cell — one branch-and-bound solve plus one run per
/// algorithm — is independent, so the full grid executes through
/// [`parallel_map`]; the rows fold back in deterministic input order.
pub fn run(cfg: &Config, class: AlgoClass) -> Vec<Table> {
    let which = match class {
        AlgoClass::Unc => "Table 2: % degradation from optimal, RGBOS, UNC algorithms",
        AlgoClass::Bnp => "Table 3: % degradation from optimal, RGBOS, BNP algorithms",
        AlgoClass::Apn => unreachable!("the paper has no RGBOS APN table"),
    };
    let algos = registry::by_class(class);
    let names: Vec<&'static str> = algos.iter().map(|a| a.name()).collect();

    let sizes = rgbos::sizes();
    let cells: Vec<(usize, usize, usize)> = rgbos::CCRS
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| sizes.iter().enumerate().map(move |(si, &v)| (ci, si, v)))
        .collect();
    let cell_results = parallel_map(cells, |(ci, si, v)| {
        let ccr = rgbos::CCRS[ci];
        let seed = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((ci * 100 + si) as u64);
        let g = rgbos::generate(RgbosParams {
            nodes: v,
            ccr,
            seed,
        });
        let opt = solve(
            &g,
            &OptimalParams {
                procs: None,
                node_limit: cfg.bnb_node_limit(),
                heuristic_incumbent: true,
                // The grid is already parallel across cells; within-cell
                // serial search keeps the machine exactly subscribed.
                threads: Some(1),
            },
        );
        let env = Env::bnp(cfg.bnp_unlimited_procs(v));
        let cell_degs: Vec<f64> = algos
            .iter()
            .map(|algo| {
                let rec = run_timed(algo.as_ref(), &g, &env);
                measures::degradation_pct(rec.makespan, opt.length)
            })
            .collect();
        (opt.proven, cell_degs)
    });

    let mut tables = Vec::new();
    for (ci, &ccr) in rgbos::CCRS.iter().enumerate() {
        let mut header: Vec<&str> = vec!["v"];
        header.extend(names.iter().copied());
        let mut t = Table::new(format!("{which} — CCR {ccr}"), &header);

        let mut opt_counts = vec![0u32; algos.len()];
        let mut degs: Vec<Running> = vec![Running::new(); algos.len()];
        let mut proven = 0u32;
        let mut total = 0u32;
        for (si, v) in sizes.iter().copied().enumerate() {
            let (cell_proven, cell_degs) = &cell_results[ci * sizes.len() + si];
            total += 1;
            if *cell_proven {
                proven += 1;
            }
            let mut row = vec![v.to_string()];
            for (ai, &d) in cell_degs.iter().enumerate() {
                if d <= 1e-9 {
                    opt_counts[ai] += 1;
                }
                degs[ai].push(d);
                row.push(f1(d));
            }
            t.row(row);
        }
        let mut row = vec!["no. of optimal".to_string()];
        row.extend(opt_counts.iter().map(|c| c.to_string()));
        t.row(row);
        let mut row = vec!["avg. degradation".to_string()];
        row.extend(degs.iter().map(|r| f1(r.mean())));
        t.row(row);
        let mut row = vec!["(B&B proven)".to_string()];
        row.push(format!("{proven}/{total}"));
        row.extend(std::iter::repeat_n(String::new(), algos.len() - 1));
        t.row(row);
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny-but-real slice of Table 2/3 used in tests: one CCR, small sizes.
    fn tiny_check(class: AlgoClass) {
        let cfg = Config::quick(7);
        let g = rgbos::generate(RgbosParams {
            nodes: 12,
            ccr: 1.0,
            seed: 3,
        });
        let opt = solve(
            &g,
            &OptimalParams {
                procs: None,
                node_limit: 2_000_000,
                heuristic_incumbent: true,
                threads: Some(1),
            },
        );
        let env = Env::bnp(cfg.bnp_unlimited_procs(12));
        for algo in registry::by_class(class) {
            let rec = run_timed(algo.as_ref(), &g, &env);
            let d = measures::degradation_pct(rec.makespan, opt.length);
            assert!(d >= -1e-9, "{} beat a proven optimum: {d}", algo.name());
        }
    }

    #[test]
    fn unc_degradations_are_nonnegative() {
        tiny_check(AlgoClass::Unc);
    }

    #[test]
    fn bnp_degradations_are_nonnegative() {
        tiny_check(AlgoClass::Bnp);
    }
}
