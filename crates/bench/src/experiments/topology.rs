//! Topology sensitivity of the APN class (§6.4 text).
//!
//! The paper states "all algorithms perform better on the networks with
//! more communication links. However, these results are excluded due to
//! space limitations." This experiment regenerates them: average NSL of
//! each APN algorithm on 8-processor networks of increasing connectivity
//! (chain 7 links → ring 8 → mesh 10 → hypercube 12 → fully connected 28).

use dagsched_core::{registry, Env};
use dagsched_metrics::{table::f2, Running, Table};
use dagsched_platform::Topology;
use dagsched_suites::rgnos::RgnosParams;

use crate::runner::run_timed;
use crate::Config;

/// Eight-processor topologies ordered by link count.
pub fn topologies() -> Vec<(&'static str, Topology)> {
    vec![
        ("chain-8", Topology::chain(8).unwrap()),
        ("ring-8", Topology::ring(8).unwrap()),
        ("mesh-2x4", Topology::mesh(2, 4).unwrap()),
        ("hypercube-3", Topology::hypercube(3).unwrap()),
        ("full-8", Topology::fully_connected(8).unwrap()),
    ]
}

/// Build the topology-sensitivity table.
pub fn run(cfg: &Config) -> Vec<Table> {
    let algos = registry::apn();
    let names: Vec<&'static str> = algos.iter().map(|a| a.name()).collect();
    let mut header: Vec<&str> = vec!["topology", "links"];
    header.extend(names.iter().copied());
    let mut t = Table::new(
        "Topology sensitivity: average NSL of APN algorithms on 8-processor networks (RGNOS)",
        &header,
    );
    let sizes: &[usize] = if cfg.full {
        &[100, 200, 300]
    } else {
        &[80, 150]
    };
    for (name, topo) in topologies() {
        let env = Env::apn(topo.clone());
        let mut acc = vec![Running::new(); algos.len()];
        for (si, &v) in sizes.iter().enumerate() {
            for (pi, (ccr, par)) in cfg.rgnos_points().into_iter().enumerate() {
                let seed = cfg
                    .seed
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add((si * 1000 + pi) as u64);
                let g = dagsched_suites::rgnos::generate(RgnosParams::new(v, ccr, par, seed));
                for (ai, algo) in algos.iter().enumerate() {
                    acc[ai].push(run_timed(algo.as_ref(), &g, &env).nsl);
                }
            }
        }
        let mut row = vec![name.to_string(), topo.num_links().to_string()];
        row.extend(acc.iter().map(|r| f2(r.mean())));
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_list_is_ordered_by_links() {
        let tops = topologies();
        let links: Vec<usize> = tops.iter().map(|(_, t)| t.num_links()).collect();
        assert!(links.windows(2).all(|w| w[0] <= w[1]), "{links:?}");
        assert!(tops.iter().all(|(_, t)| t.num_procs() == 8));
    }

    #[test]
    fn more_links_help_on_a_comm_heavy_graph() {
        // MH on a chain vs a fully connected machine: connectivity can only
        // help (same algorithm, strictly more routing options).
        let g = dagsched_suites::rgnos::generate(RgnosParams::new(60, 10.0, 3, 5));
        let mh = registry::by_name("MH").unwrap();
        let chain = run_timed(mh.as_ref(), &g, &Env::apn(Topology::chain(8).unwrap()));
        let full = run_timed(
            mh.as_ref(),
            &g,
            &Env::apn(Topology::fully_connected(8).unwrap()),
        );
        assert!(
            full.makespan <= chain.makespan,
            "full {} vs chain {}",
            full.makespan,
            chain.makespan
        );
    }
}
