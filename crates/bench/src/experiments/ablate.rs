//! Ablations of the design choices the paper's conclusions single out (§7):
//!
//! * "**Insertion is better than non-insertion**" — MCP with its insertion
//!   slot policy vs an append-only MCP.
//! * "**Dynamic critical path is better than static**" / look-ahead — DCP
//!   with and without its critical-child look-ahead.
//! * "Different DSAs have used the t-level and b-level attributes in a
//!   variety of ways" (§3) — one fixed list scheduler (greedy min-EST,
//!   append) under three priority attributes: static level, b-level, and
//!   `b-level − t-level`.

use dagsched_core::common::{best_proc, ReadySet, SlotPolicy};
use dagsched_core::{bnp, registry, unc::Dcp, Env};
use dagsched_graph::{levels, TaskGraph};
use dagsched_metrics::{table::f2, Running, Table};
use dagsched_platform::Schedule;
use dagsched_suites::rgnos::RgnosParams;

use crate::runner::run_timed;
use crate::Config;

/// Which attribute orders the list in the priority ablation.
#[derive(Debug, Clone, Copy)]
pub enum Priority {
    StaticLevel,
    BLevel,
    BMinusT,
}

/// Plain greedy list scheduler (append policy, min-EST processor) with a
/// configurable priority attribute — the §3 taxonomy knob isolated from
/// everything else.
pub fn list_schedule(g: &TaskGraph, procs: usize, prio: Priority) -> Schedule {
    let key: Vec<i64> = match prio {
        Priority::StaticLevel => levels::static_levels(g).iter().map(|&x| x as i64).collect(),
        Priority::BLevel => levels::b_levels(g).iter().map(|&x| x as i64).collect(),
        Priority::BMinusT => {
            let bl = levels::b_levels(g);
            let tl = levels::t_levels(g);
            g.tasks()
                .map(|n| bl[n.index()] as i64 - tl[n.index()] as i64)
                .collect()
        }
    };
    let mut s = Schedule::new(g.num_tasks(), procs);
    let mut ready = ReadySet::new(g);
    while !ready.is_empty() {
        let n = ready.argmax_by_key(|n| key[n.index()]).expect("non-empty");
        let (p, est) = best_proc(g, &s, n, SlotPolicy::Append);
        s.place(n, p, est, g.weight(n))
            .expect("append cannot collide");
        ready.take(g, n);
    }
    s
}

fn sample_graphs(cfg: &Config) -> Vec<TaskGraph> {
    let sizes: &[usize] = if cfg.full {
        &[50, 100, 200, 300]
    } else {
        &[50, 100]
    };
    let mut out = Vec::new();
    for (si, &v) in sizes.iter().enumerate() {
        for (pi, (ccr, par)) in cfg.rgnos_points().into_iter().enumerate() {
            let seed = cfg
                .seed
                .wrapping_mul(0x94D0_49BB_1331_11EB)
                .wrapping_add((si * 1000 + pi) as u64);
            out.push(dagsched_suites::rgnos::generate(RgnosParams::new(
                v, ccr, par, seed,
            )));
        }
    }
    out
}

/// Run all three ablations; one table each.
pub fn run(cfg: &Config) -> Vec<Table> {
    let graphs = sample_graphs(cfg);
    let mut tables = Vec::new();

    // 1. Insertion.
    {
        let variants = [
            ("MCP (insertion)", bnp::mcp()),
            ("MCP (append-only)", bnp::mcp_append()),
        ];
        let mut t = Table::new(
            "Ablation: insertion vs non-insertion (avg NSL, RGNOS sample)",
            &["variant", "avg NSL", "avg procs"],
        );
        for (label, algo) in variants {
            let mut nsl = Running::new();
            let mut procs = Running::new();
            for g in &graphs {
                let env = Env::bnp(cfg.bnp_unlimited_procs(g.num_tasks()));
                let rec = run_timed(&algo, g, &env);
                nsl.push(rec.nsl);
                procs.push(rec.procs_used as f64);
            }
            t.row(vec![label.to_string(), f2(nsl.mean()), f2(procs.mean())]);
        }
        tables.push(t);
    }

    // 2. DCP look-ahead.
    {
        let variants: [(&str, Dcp); 2] = [
            ("DCP (look-ahead)", Dcp { lookahead: true }),
            ("DCP (greedy start)", Dcp { lookahead: false }),
        ];
        let mut t = Table::new(
            "Ablation: DCP critical-child look-ahead (avg NSL, RGNOS sample)",
            &["variant", "avg NSL", "avg procs"],
        );
        for (label, algo) in variants {
            let mut nsl = Running::new();
            let mut procs = Running::new();
            for g in &graphs {
                let env = Env::bnp(1); // UNC ignores the environment
                let rec = run_timed(&algo, g, &env);
                nsl.push(rec.nsl);
                procs.push(rec.procs_used as f64);
            }
            t.row(vec![label.to_string(), f2(nsl.mean()), f2(procs.mean())]);
        }
        tables.push(t);
    }

    // 3. Priority attribute.
    {
        let mut t = Table::new(
            "Ablation: list-scheduling priority attribute (avg NSL, RGNOS sample)",
            &["priority", "avg NSL"],
        );
        for (label, prio) in [
            ("static level (HLFET)", Priority::StaticLevel),
            ("b-level", Priority::BLevel),
            ("b-level − t-level", Priority::BMinusT),
        ] {
            let mut nsl = Running::new();
            for g in &graphs {
                let procs = cfg.bnp_unlimited_procs(g.num_tasks());
                let s = list_schedule(g, procs, prio);
                s.validate(g).expect("ablation scheduler must stay valid");
                nsl.push(dagsched_metrics::nsl(g, &s));
            }
            t.row(vec![label.to_string(), f2(nsl.mean())]);
        }
        tables.push(t);
    }

    // Context row: the full roster's best on the same sample, for scale.
    {
        let mut t = Table::new(
            "Reference: best-of-roster avg NSL on the same sample",
            &["algorithm", "avg NSL"],
        );
        let mut best_algo = ("", f64::INFINITY);
        for algo in registry::bnp().into_iter().chain(registry::unc()) {
            let mut nsl = Running::new();
            for g in &graphs {
                let env = Env::bnp(cfg.bnp_unlimited_procs(g.num_tasks()));
                nsl.push(run_timed(algo.as_ref(), g, &env).nsl);
            }
            if nsl.mean() < best_algo.1 {
                best_algo = (algo.name(), nsl.mean());
            }
        }
        t.row(vec![best_algo.0.to_string(), f2(best_algo.1)]);
        tables.push(t);
    }

    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::Scheduler;

    #[test]
    fn priority_variants_produce_valid_schedules() {
        let g = dagsched_suites::rgnos::generate(RgnosParams::new(60, 1.0, 3, 2));
        for prio in [Priority::StaticLevel, Priority::BLevel, Priority::BMinusT] {
            let s = list_schedule(&g, 8, prio);
            assert!(s.validate(&g).is_ok());
        }
    }

    #[test]
    fn insertion_never_hurts_mcp_on_average() {
        // Insertion strictly widens the slot choice per node; on a small
        // deterministic sample the average NSL must not be worse.
        let cfg = Config::quick(5);
        let graphs = sample_graphs(&cfg);
        let (mut with, mut without) = (Running::new(), Running::new());
        for g in &graphs[..4.min(graphs.len())] {
            let env = Env::bnp(cfg.bnp_unlimited_procs(g.num_tasks()));
            with.push(run_timed(&bnp::mcp(), g, &env).nsl);
            without.push(run_timed(&bnp::mcp_append(), g, &env).nsl);
        }
        assert!(
            with.mean() <= without.mean() + 1e-9,
            "insertion {} vs append {}",
            with.mean(),
            without.mean()
        );
    }

    #[test]
    fn ablation_scheduler_name_is_stable() {
        // The append-only MCP keeps its public name whatever the knob
        // (tables label the variants themselves).
        assert_eq!(bnp::mcp_append().name(), "MCP");
        assert_eq!(Dcp { lookahead: false }.name(), "DCP");
    }
}
