//! Tables 4 & 5 — percentage degradations from the pre-determined optimal
//! schedules on the RGPOS benchmarks (§6.3).
//!
//! The reference length is exact by construction (`Σw / p` with zero idle
//! on `p = 8` processors), so no search is involved. Two instance variants
//! (the paper underspecifies this; see `dagsched_suites::rgpos` and
//! DESIGN.md):
//!
//! * **Table 4 (UNC)** uses *chained* instances, whose optimum is pinned
//!   machine-independently — meaningful for algorithms that may open more
//!   than `p` clusters, and every degradation is provably non-negative.
//! * **Table 5 (BNP)** uses *unchained* instances on the construction
//!   machine itself (`p = 8`), where the utilization bound pins the
//!   optimum and the free within-processor ordering keeps the problem
//!   hard for list schedulers.

use dagsched_core::{registry, AlgoClass, Env};
use dagsched_metrics::{measures, table::f1, Running, Table};
use dagsched_suites::rgpos::{self, RgposParams};

use crate::par::parallel_map;
use crate::runner::run_timed;
use crate::Config;

/// Build Table 4 (`class = Unc`) or Table 5 (`class = Bnp`).
///
/// Like the RGBOS tables, the (CCR, size) grid runs through
/// [`parallel_map`] and folds back in input order.
pub fn run(cfg: &Config, class: AlgoClass) -> Vec<Table> {
    let which = match class {
        AlgoClass::Unc => "Table 4: % degradation from optimal, RGPOS, UNC algorithms",
        AlgoClass::Bnp => "Table 5: % degradation from optimal, RGPOS, BNP algorithms",
        AlgoClass::Apn => unreachable!("the paper has no RGPOS APN table"),
    };
    let algos = registry::by_class(class);
    let names: Vec<&'static str> = algos.iter().map(|a| a.name()).collect();
    let sizes: Vec<usize> = if cfg.full {
        rgpos::sizes()
    } else {
        vec![50, 100, 200, 300, 500]
    };

    let cells: Vec<(usize, usize, usize)> = rgpos::CCRS
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| sizes.iter().enumerate().map(move |(si, &v)| (ci, si, v)))
        .collect();
    let cell_results = parallel_map(cells, |(ci, si, v)| {
        let ccr = rgpos::CCRS[ci];
        let seed = cfg
            .seed
            .wrapping_mul(0xD134_2543_DE82_EF95)
            .wrapping_add((ci * 100 + si) as u64);
        let params = match class {
            AlgoClass::Unc => RgposParams::new(v, ccr, seed),
            _ => RgposParams::unchained(v, ccr, seed),
        };
        let inst = rgpos::generate(params);
        let env = Env::bnp(inst.procs);
        algos
            .iter()
            .map(|algo| {
                let rec = run_timed(algo.as_ref(), &inst.graph, &env);
                measures::degradation_pct(rec.makespan, inst.optimal)
            })
            .collect::<Vec<f64>>()
    });

    let mut tables = Vec::new();
    for (ci, &ccr) in rgpos::CCRS.iter().enumerate() {
        let mut header: Vec<&str> = vec!["v"];
        header.extend(names.iter().copied());
        let mut t = Table::new(format!("{which} — CCR {ccr}"), &header);

        let mut opt_counts = vec![0u32; algos.len()];
        let mut degs: Vec<Running> = vec![Running::new(); algos.len()];
        for (si, v) in sizes.iter().copied().enumerate() {
            let cell_degs = &cell_results[ci * sizes.len() + si];
            let mut row = vec![v.to_string()];
            for (ai, &d) in cell_degs.iter().enumerate() {
                if d.abs() <= 1e-9 {
                    opt_counts[ai] += 1;
                }
                degs[ai].push(d);
                row.push(f1(d));
            }
            t.row(row);
        }
        let mut row = vec!["no. of optimal".to_string()];
        row.extend(opt_counts.iter().map(|c| c.to_string()));
        t.row(row);
        let mut row = vec!["avg. degradation".to_string()];
        row.extend(degs.iter().map(|r| f1(r.mean())));
        t.row(row);
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bnp_never_beats_the_packing_bound() {
        // On the construction machine (p = 8), L_opt = Σw/p is a hard lower
        // bound: every BNP degradation must be ≥ 0.
        let inst = rgpos::generate(RgposParams::new(60, 1.0, 5));
        let env = Env::bnp(inst.procs);
        for algo in registry::bnp() {
            let rec = run_timed(algo.as_ref(), &inst.graph, &env);
            assert!(
                rec.makespan >= inst.optimal,
                "{} beat the utilization bound",
                algo.name()
            );
        }
    }

    #[test]
    fn degradations_shrink_for_easy_ccr() {
        // Not a strict law, but with CCR 0.1 the embedded schedule is easy
        // to approach: the best BNP algorithm should be within 50% of
        // optimal on a small instance.
        let inst = rgpos::generate(RgposParams::new(50, 0.1, 9));
        let env = Env::bnp(inst.procs);
        let best = registry::bnp()
            .iter()
            .map(|a| run_timed(a.as_ref(), &inst.graph, &env).makespan)
            .min()
            .unwrap();
        let d = measures::degradation_pct(best, inst.optimal);
        assert!(d < 50.0, "best BNP degradation unexpectedly high: {d}");
    }
}
