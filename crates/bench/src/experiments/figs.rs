//! Figures 2, 3 and 4 — NSL and processor-count series (§6.4, §6.5).
//!
//! * **Fig. 2(a–c)** — average NSL vs graph size on RGNOS, one sub-table
//!   per class (UNC, BNP, APN). APN runs on the 8-processor hypercube.
//! * **Fig. 3(a–b)** — average number of processors used vs graph size on
//!   RGNOS for the UNC and BNP classes (BNP given a virtually unlimited
//!   machine, §6.4.2).
//! * **Fig. 4(a–c)** — average NSL on Cholesky-factorization traced graphs
//!   vs matrix dimension, one sub-table per class.

use dagsched_core::{registry, AlgoClass, Env};
use dagsched_metrics::{table::f2, Running, Table};
use dagsched_suites::{rgnos::RgnosParams, traced};

use crate::par::parallel_map;
use crate::runner::run_timed;
use crate::Config;

fn class_env(cfg: &Config, class: AlgoClass, v: usize) -> Env {
    match class {
        AlgoClass::Apn => Env::apn(cfg.apn_topology()),
        _ => Env::bnp(cfg.bnp_unlimited_procs(v)),
    }
}

/// Shared sweep behind Figures 2 and 3: one RGNOS graph per (size, point)
/// cell, every algorithm of `class` run on it, `measure` extracted. Cells
/// execute through [`parallel_map`] (each regenerates its graph from its
/// own seed); the per-size averages fold back in deterministic input order.
fn rgnos_averages(
    cfg: &Config,
    class: AlgoClass,
    measure: impl Fn(&crate::runner::RunRecord) -> f64 + Sync,
) -> Vec<Vec<f64>> {
    let algos = registry::by_class(class);
    let sizes = cfg.rgnos_sizes();
    let points = cfg.rgnos_points();
    let cells: Vec<(usize, usize)> = (0..sizes.len())
        .flat_map(|si| (0..points.len()).map(move |pi| (si, pi)))
        .collect();
    let cell_results = parallel_map(cells, |(si, pi)| {
        let v = sizes[si];
        let (ccr, par) = points[pi];
        let env = class_env(cfg, class, v);
        let seed = cfg
            .seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add((si * 1000 + pi) as u64);
        let g = dagsched_suites::rgnos::generate(RgnosParams::new(v, ccr, par, seed));
        algos
            .iter()
            .map(|algo| measure(&run_timed(algo.as_ref(), &g, &env)))
            .collect::<Vec<f64>>()
    });
    sizes
        .iter()
        .enumerate()
        .map(|(si, _)| {
            let mut acc = vec![Running::new(); algos.len()];
            for pi in 0..points.len() {
                for (ai, &x) in cell_results[si * points.len() + pi].iter().enumerate() {
                    acc[ai].push(x);
                }
            }
            acc.iter().map(|r| r.mean()).collect()
        })
        .collect()
}

/// Fig. 2: average NSL of the UNC (a), BNP (b) and APN (c) algorithms on
/// RGNOS, by graph size.
pub fn fig2(cfg: &Config) -> Vec<Table> {
    let mut tables = Vec::new();
    for (sub, class) in [
        ("(a) UNC", AlgoClass::Unc),
        ("(b) BNP", AlgoClass::Bnp),
        ("(c) APN", AlgoClass::Apn),
    ] {
        let algos = registry::by_class(class);
        let names: Vec<&'static str> = algos.iter().map(|a| a.name()).collect();
        let mut header: Vec<&str> = vec!["v"];
        header.extend(names.iter().copied());
        let mut t = Table::new(
            format!("Figure 2{sub}: average NSL on RGNOS vs graph size"),
            &header,
        );
        let means = rgnos_averages(cfg, class, |rec| rec.nsl);
        for (si, v) in cfg.rgnos_sizes().into_iter().enumerate() {
            let mut row = vec![v.to_string()];
            row.extend(means[si].iter().map(|&m| f2(m)));
            t.row(row);
        }
        tables.push(t);
    }
    tables
}

/// Fig. 3: average number of processors used on RGNOS by the UNC (a) and
/// BNP (b) algorithms.
pub fn fig3(cfg: &Config) -> Vec<Table> {
    let mut tables = Vec::new();
    for (sub, class) in [("(a) UNC", AlgoClass::Unc), ("(b) BNP", AlgoClass::Bnp)] {
        let algos = registry::by_class(class);
        let names: Vec<&'static str> = algos.iter().map(|a| a.name()).collect();
        let mut header: Vec<&str> = vec!["v"];
        header.extend(names.iter().copied());
        let mut t = Table::new(
            format!("Figure 3{sub}: average processors used on RGNOS vs graph size"),
            &header,
        );
        let means = rgnos_averages(cfg, class, |rec| rec.procs_used as f64);
        for (si, v) in cfg.rgnos_sizes().into_iter().enumerate() {
            let mut row = vec![v.to_string()];
            row.extend(means[si].iter().map(|&m| format!("{m:.1}")));
            t.row(row);
        }
        tables.push(t);
    }
    tables
}

/// Fig. 4: average NSL on Cholesky traced graphs vs matrix dimension, per
/// class.
pub fn fig4(cfg: &Config) -> Vec<Table> {
    let dims: Vec<usize> = if cfg.full {
        traced::cholesky_dimensions()
    } else {
        vec![8, 12, 16, 20, 24]
    };
    let ccrs: [f64; 2] = [0.1, 1.0];
    let mut tables = Vec::new();
    for (sub, class) in [
        ("(a) UNC", AlgoClass::Unc),
        ("(b) BNP", AlgoClass::Bnp),
        ("(c) APN", AlgoClass::Apn),
    ] {
        let algos = registry::by_class(class);
        let names: Vec<&'static str> = algos.iter().map(|a| a.name()).collect();
        let mut header: Vec<&str> = vec!["N", "v"];
        header.extend(names.iter().copied());
        let mut t = Table::new(
            format!("Figure 4{sub}: average NSL on Cholesky graphs vs matrix dimension"),
            &header,
        );
        for &n in &dims {
            let v = n * (n + 1) / 2;
            let env = class_env(cfg, class, v);
            let mut acc = vec![Running::new(); algos.len()];
            for &ccr in &ccrs {
                let g = traced::cholesky(n, ccr);
                for (ai, algo) in algos.iter().enumerate() {
                    acc[ai].push(run_timed(algo.as_ref(), &g, &env).nsl);
                }
            }
            let mut row = vec![n.to_string(), v.to_string()];
            row.extend(acc.iter().map(|r| f2(r.mean())));
            t.row(row);
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_runs_on_smallest_dims() {
        // One dimension, all three classes — checks the plumbing end to end.
        let cfg = Config::quick(2);
        let g = traced::cholesky(6, 1.0);
        for class in [AlgoClass::Unc, AlgoClass::Bnp, AlgoClass::Apn] {
            let env = class_env(&cfg, class, g.num_tasks());
            for algo in registry::by_class(class) {
                let rec = run_timed(algo.as_ref(), &g, &env);
                assert!(rec.nsl >= 1.0, "{}: NSL {}", algo.name(), rec.nsl);
            }
        }
    }

    #[test]
    fn nsl_is_at_least_one_everywhere() {
        let cfg = Config::quick(4);
        let g = dagsched_suites::rgnos::generate(RgnosParams::new(50, 1.0, 2, 11));
        for class in [AlgoClass::Unc, AlgoClass::Bnp] {
            let env = class_env(&cfg, class, 50);
            for algo in registry::by_class(class) {
                assert!(
                    run_timed(algo.as_ref(), &g, &env).nsl >= 1.0,
                    "{}",
                    algo.name()
                );
            }
        }
    }
}
