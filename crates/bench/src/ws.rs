//! The work-stealing execution substrate, re-exported from
//! [`dagsched_ws`].
//!
//! The runtime lives in its own bottom-of-the-stack crate so that both
//! this harness (every sweep funnels through [`crate::par::parallel_map`])
//! and `dagsched-optimal`'s parallel branch-and-bound (which `dagsched-
//! bench` depends on, so it cannot depend back on the harness) share one
//! substrate: per-worker [`WsDeque`]s with LIFO owner pop and FIFO steal,
//! randomized-victim stealing with exponential backoff parking, atomic
//! pending-job termination detection, and panic propagation after the
//! scope joins. See the [`dagsched_ws`] crate docs for the design notes
//! (including why the deque is a lock-guarded buffer with an atomic length
//! hint rather than an unsafe Chase–Lev ring) and the determinism
//! contract.

pub use dagsched_ws::{parallel_map, parallel_map_with, run_jobs, worker_count, Ctx, WsDeque};
