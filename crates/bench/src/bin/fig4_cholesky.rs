//! Regenerates Figure 4(a-c) of the paper (NSL on Cholesky traced graphs).
fn main() {
    let cfg = dagsched_bench::Config::from_env();
    dagsched_bench::experiments::print_tables(&dagsched_bench::experiments::figs::fig4(&cfg));
}
