//! Design-choice ablations (insertion, DCP look-ahead, priority attribute).
fn main() {
    let cfg = dagsched_bench::Config::from_env();
    dagsched_bench::experiments::print_tables(&dagsched_bench::experiments::ablate::run(&cfg));
}
