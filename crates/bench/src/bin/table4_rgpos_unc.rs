//! Regenerates Table 4 of the paper (RGPOS degradation, UNC class).
fn main() {
    let cfg = dagsched_bench::Config::from_env();
    let t = dagsched_bench::experiments::rgpos::run(&cfg, dagsched_core::AlgoClass::Unc);
    dagsched_bench::experiments::print_tables(&t);
}
