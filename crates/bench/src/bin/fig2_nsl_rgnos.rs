//! Regenerates Figure 2(a-c) of the paper (average NSL on RGNOS).
fn main() {
    let cfg = dagsched_bench::Config::from_env();
    dagsched_bench::experiments::print_tables(&dagsched_bench::experiments::figs::fig2(&cfg));
}
