//! Regenerates Table 1 of the paper. `TASKBENCH_FULL=1` for paper-scale runs.
fn main() {
    let cfg = dagsched_bench::Config::from_env();
    dagsched_bench::experiments::print_tables(&dagsched_bench::experiments::table1::run(&cfg));
}
