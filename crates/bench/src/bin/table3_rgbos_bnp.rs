//! Regenerates Table 3 of the paper (RGBOS degradation, BNP class).
fn main() {
    let cfg = dagsched_bench::Config::from_env();
    let t = dagsched_bench::experiments::rgbos::run(&cfg, dagsched_core::AlgoClass::Bnp);
    dagsched_bench::experiments::print_tables(&t);
}
