// Examples and bench binaries own their stdout (terminal reports).
#![allow(clippy::print_stdout)]
//! Records the workspace perf baseline into `BENCH_RESULTS.json`.
//!
//! Eight sections, all deterministic given the seed:
//!
//! 1. **dsc_speedup** — the refactored DSC against the retained
//!    pre-refactor implementation ([`dagsched_bench::baseline`]) on
//!    1000-node CCR=1.0 RGNOS graphs; asserts byte-identical placements
//!    and a ≥5× speedup (PR 1's acceptance bar).
//! 2. **dsc_incremental_speedup** — the indexed-heap DSC engine against
//!    the retained scan version
//!    ([`dagsched_bench::baseline::DscScanBaseline`]: clone-free DSRW but
//!    O(v + e) partially-free rescans per step) on paper-scale 5000-node
//!    RGNOS graphs; asserts placement-identical schedules and a ≥2×
//!    speedup on the headline v=5000 instance (PR 4's acceptance bar).
//! 3. **md_incremental_speedup** / **dcp_incremental_speedup** — the
//!    [`DynLevelsEngine`](dagsched_core::common::DynLevelsEngine)-driven
//!    MD and DCP against the retained per-placement-rescan versions
//!    ([`dagsched_bench::baseline::MdScan`] /
//!    [`dagsched_bench::baseline::DcpScan`]) on paper-scale 2000-node
//!    RGNOS graphs; asserts placement-identical schedules and a ≥3×
//!    speedup on each headline v=2000 instance (PR 5's acceptance bar).
//! 4. **bsa_speedup** — the journal-driven incremental BSA against the
//!    retained replay-per-candidate baseline over the old message layer
//!    ([`dagsched_bench::baseline::BsaBaseline`]) on the paper-scale APN
//!    instance (500-node RGNOS on the 8-processor hypercube, §6.4);
//!    asserts placement- and message-identical schedules and a ≥5×
//!    speedup on the headline CCR=0.1 instance (PR 3's acceptance bar),
//!    with CCR 1.0 and 10.0 rows recorded alongside.
//! 5. **algo_runtimes** — seconds per run for every registered algorithm
//!    on RGNOS graphs of growing size (APN capped small: message routing
//!    is still the slowest class per run). Timing is single-threaded.
//! 6. **runner_scaling** — wall-clock of the same (algorithm × graph)
//!    sweep through the work-stealing runner with 1 worker vs all cores
//!    (warmup pass, then median of 3 timed passes per leg); asserts a
//!    ≥1.5× speedup when the host has ≥4 cores (PR 6's acceptance bar —
//!    smaller hosts run the determinism check but are exempt and
//!    flagged).
//! 7. **bnb_parallel_speedup** — the parallel branch-and-bound against
//!    its own serial path on proving RGNOS instances (same warmup +
//!    median-of-3 protocol); asserts makespan equality and both sides
//!    proven, records the serial node/prune counters, and gates ≥1.5×
//!    on ≥4 workers (serial fallback exempt; PR 6's second bar).
//! 8. **trace_overhead** — the zero-cost-tracing gate: the instrumented
//!    hot paths under the disabled [`dagsched_obs::NullSink`] against the
//!    retained pre-instrumentation copies
//!    ([`dagsched_bench::preobs`]) on the 5000-node DSC headline
//!    instance and the branch-and-bound headline instance; asserts
//!    placement/counter identity and an interleaved median-of-N time
//!    ratio ≤ [`TRACE_OVERHEAD_MAX_RATIO`] (multi-run samples, warmup,
//!    best of up to [`TRACE_OVERHEAD_ATTEMPTS`] attempts — 2% sits
//!    inside scheduler noise on a busy host).
//! 9. **paper_sweep_budget** — wall-clock of the full Table-6 replication
//!    (all fifteen algorithms, serial, honest per-run timings) under an
//!    asserted ceiling: the quick CI-sized sweep must stay under
//!    [`QUICK_SWEEP_BUDGET_S`], and with `TASKBENCH_FULL=1` the
//!    paper-scale sweep (10 sizes × 25 (CCR, parallelism) points) must
//!    stay under [`FULL_SWEEP_BUDGET_S`] — the regression tripwire that
//!    keeps the whole replication runnable.
//! 10. **serve_throughput** — an in-process `dagsched-serve` daemon
//!     replaying the RGNOS loadgen suite with verification on: gates that
//!     every served schedule is byte-identical to in-process scheduling
//!     (`errors == 0`) and that the repeated suite hits the schedule
//!     cache (`cache_hit_rate > 0`). Throughput and p50/p95/p99 latency
//!     are recorded but never gated — wall-clock serving numbers are
//!     indicative only.
//!
//! Output path: `TASKBENCH_BENCH_OUT` or `<workspace>/BENCH_RESULTS.json`.
//! Additionally, one summary record per run is *appended* to
//! `BENCH_HISTORY.jsonl` (override with `TASKBENCH_BENCH_HISTORY`), keyed
//! by git SHA and UTC date, so the perf trajectory across PRs survives the
//! overwrite of the full report. Run with `--release`; debug timings are
//! not comparable.

use dagsched_bench::baseline::bnp::{DlsMono, EtfMono, HlfetMono, IshMono, LastMono, McpMono};
use dagsched_bench::baseline::{BsaBaseline, DcpScan, DscBaseline, DscScanBaseline, MdScan};
use dagsched_bench::par;
use dagsched_bench::preobs;
use dagsched_bench::report::Json;
use dagsched_core::{registry, AlgoClass, Env, Scheduler};
use dagsched_optimal::{solve, OptimalParams};
use dagsched_suites::rgnos::{self, RgnosParams};
use std::time::Instant;

/// Ceiling on instrumented-over-preobs time with tracing disabled: the
/// observability PR's acceptance bar (≤2%).
const TRACE_OVERHEAD_MAX_RATIO: f64 = 1.02;
/// Re-measurement attempts before the overhead gate fails; the best
/// (lowest) attempt ratio is the one gated and recorded.
const TRACE_OVERHEAD_ATTEMPTS: usize = 4;

/// Wall-clock ceiling for the quick (CI-sized) Table-6 replication sweep.
const QUICK_SWEEP_BUDGET_S: f64 = 120.0;
/// Wall-clock ceiling for the `TASKBENCH_FULL=1` paper-scale Table-6 sweep.
const FULL_SWEEP_BUDGET_S: f64 = 900.0;

/// Best-of-`reps` wall time of `algo`, with the outcome of the last rep
/// (so equivalence checks can reuse a timed run instead of paying an
/// extra one).
fn time_schedule(
    reps: usize,
    algo: &dyn Scheduler,
    g: &dagsched_graph::TaskGraph,
    env: &Env,
) -> (f64, dagsched_core::Outcome) {
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = algo.schedule(g, env).expect("schedules");
        best = best.min(t0.elapsed().as_secs_f64());
        outcome = Some(out);
    }
    (best, outcome.expect("reps >= 1"))
}

fn dsc_speedup_section() -> Json {
    let dsc = registry::by_name("DSC").unwrap();
    let env = Env::bnp(1); // UNC algorithms ignore the environment
    let mut rows = Vec::new();
    let mut headline = 0.0;
    for &(v, seed) in &[(500usize, 42u64), (1000, 42), (1000, 43)] {
        let g = rgnos::generate(RgnosParams::new(v, 1.0, 3, seed));
        let reps = 3;
        let (base_s, base_out) = time_schedule(reps, &DscBaseline, &g, &env);
        let (new_s, new_out) = time_schedule(reps, dsc.as_ref(), &g, &env);
        let (base_m, new_m) = (base_out.schedule.makespan(), new_out.schedule.makespan());
        assert_eq!(
            base_m, new_m,
            "refactored DSC changed the makespan on v={v} seed={seed}"
        );
        let speedup = base_s / new_s;
        if v == 1000 && seed == 42 {
            headline = speedup;
        }
        println!(
            "DSC v={v} seed={seed}: baseline {base_s:.4}s vs refactored {new_s:.4}s \
             → {speedup:.1}x (makespan {new_m})"
        );
        rows.push(Json::obj([
            ("nodes", Json::Int(v as i64)),
            ("ccr", Json::Num(1.0)),
            ("seed", Json::Int(seed as i64)),
            ("baseline_s", Json::Num(base_s)),
            ("refactored_s", Json::Num(new_s)),
            ("speedup", Json::Num(speedup)),
            ("makespan", Json::Int(new_m as i64)),
        ]));
    }
    assert!(
        headline >= 5.0,
        "acceptance bar: DSC must be ≥5x faster on the 1000-node CCR=1.0 instance, got {headline:.1}x"
    );
    Json::obj([
        ("headline_speedup_v1000", Json::Num(headline)),
        ("instances", Json::Arr(rows)),
    ])
}

/// Shared driver for the incremental-vs-rescan speedup sections (DSC's
/// heap engine, MD/DCP's dynamic-levels engine): time the engine-driven
/// scheduler against its retained rescan baseline, assert
/// placement-identical schedules (reusing the timed outcomes — no extra
/// runs), and gate the speedup on the `(headline_v, 42)` instance.
fn incremental_speedup_section(
    name: &str,
    scan: &dyn Scheduler,
    instances: &[(usize, u64)],
    headline_v: usize,
    bar: f64,
) -> Json {
    let algo = registry::by_name(name).unwrap();
    let env = Env::bnp(1); // UNC algorithms ignore the environment
    let mut rows = Vec::new();
    let mut headline = 0.0;
    for &(v, seed) in instances {
        let g = rgnos::generate(RgnosParams::new(v, 1.0, 3, seed));
        let reps = 3;
        let (base_s, base_out) = time_schedule(reps, scan, &g, &env);
        let (new_s, new_out) = time_schedule(reps, algo.as_ref(), &g, &env);
        // Placement-identical schedules, not just equal makespans.
        for n in g.tasks() {
            assert_eq!(
                base_out.schedule.placement(n),
                new_out.schedule.placement(n),
                "incremental {name} placement diverged on v={v} seed={seed} task {n}"
            );
        }
        let makespan = new_out.schedule.makespan();
        let speedup = base_s / new_s;
        if v == headline_v && seed == 42 {
            headline = speedup;
        }
        println!(
            "{name}-incremental v={v} seed={seed}: rescan {base_s:.4}s vs engine {new_s:.4}s \
             → {speedup:.1}x (makespan {makespan})"
        );
        rows.push(Json::obj([
            ("nodes", Json::Int(v as i64)),
            ("ccr", Json::Num(1.0)),
            ("seed", Json::Int(seed as i64)),
            ("rescan_s", Json::Num(base_s)),
            ("incremental_s", Json::Num(new_s)),
            ("speedup", Json::Num(speedup)),
            ("makespan", Json::Int(makespan as i64)),
        ]));
    }
    assert!(
        headline >= bar,
        "acceptance bar: incremental {name} must be ≥{bar}x faster than the \
         retained rescan baseline on the {headline_v}-node RGNOS instance, \
         got {headline:.1}x"
    );
    Json::Obj(vec![
        (
            format!("headline_speedup_v{headline_v}"),
            Json::Num(headline),
        ),
        ("instances".to_string(), Json::Arr(rows)),
    ])
}

fn bsa_speedup_section() -> Json {
    let bsa = registry::by_name("BSA").unwrap();
    let topo = dagsched_bench::Config::quick(0x1998).apn_topology();
    let env = Env::apn(topo);
    let mut rows = Vec::new();
    let mut headline = 0.0;
    for &ccr in &[0.1f64, 1.0, 10.0] {
        let g = rgnos::generate(RgnosParams::new(500, ccr, 3, 42));
        let reps = 3;
        let (base_s, a) = time_schedule(reps, &BsaBaseline, &g, &env);
        let (new_s, b) = time_schedule(reps, bsa.as_ref(), &g, &env);
        let new_m = b.schedule.makespan();
        // Byte-identical schedules: placements AND committed messages
        // (reusing the timed outcomes — no extra runs).
        for n in g.tasks() {
            assert_eq!(
                a.schedule.placement(n),
                b.schedule.placement(n),
                "BSA placement diverged on ccr={ccr} task {n}"
            );
        }
        let msgs = |o: &dagsched_core::Outcome| {
            let mut m: Vec<_> = o.network.as_ref().unwrap().messages().cloned().collect();
            m.sort_by_key(|m| (m.src_task, m.dst_task));
            m
        };
        assert_eq!(msgs(&a), msgs(&b), "BSA messages diverged on ccr={ccr}");
        let speedup = base_s / new_s;
        if ccr == 0.1 {
            headline = speedup;
        }
        println!(
            "BSA v=500 ccr={ccr}: baseline {base_s:.4}s vs incremental {new_s:.4}s \
             → {speedup:.1}x (makespan {new_m})"
        );
        rows.push(Json::obj([
            ("nodes", Json::Int(500)),
            ("ccr", Json::Num(ccr)),
            ("seed", Json::Int(42)),
            ("baseline_s", Json::Num(base_s)),
            ("incremental_s", Json::Num(new_s)),
            ("speedup", Json::Num(speedup)),
            ("makespan", Json::Int(new_m as i64)),
        ]));
    }
    assert!(
        headline >= 5.0,
        "acceptance bar: BSA must be ≥5x faster on the 500-node CCR=0.1 APN instance, got {headline:.1}x"
    );
    Json::obj([
        ("headline_speedup_v500_ccr01", Json::Num(headline)),
        ("instances", Json::Arr(rows)),
    ])
}

fn algo_runtimes_section() -> Json {
    let apn_env = Env::apn(dagsched_bench::Config::quick(0x1998).apn_topology());
    let mut rows = Vec::new();
    for class in [AlgoClass::Bnp, AlgoClass::Unc, AlgoClass::Apn] {
        let sizes: &[usize] = if class == AlgoClass::Apn {
            &[50, 100]
        } else {
            &[200, 500, 1000]
        };
        for &v in sizes {
            let g = rgnos::generate(RgnosParams::new(v, 1.0, 3, 42));
            let env = match class {
                AlgoClass::Apn => apn_env.clone(),
                _ => Env::bnp(v.min(32)),
            };
            for algo in registry::by_class(class) {
                let (secs, out) = time_schedule(3, algo.as_ref(), &g, &env);
                let makespan = out.schedule.makespan();
                println!("{:>8} v={v}: {secs:.5}s (makespan {makespan})", algo.name());
                rows.push(Json::obj([
                    ("algo", Json::str(algo.name())),
                    ("class", Json::str(class.to_string())),
                    ("nodes", Json::Int(v as i64)),
                    ("seconds", Json::Num(secs)),
                    ("makespan", Json::Int(makespan as i64)),
                ]));
            }
        }
    }
    Json::Arr(rows)
}

/// Median wall time of three timed passes of `f`, after one untimed
/// warmup pass (page-faults, branch predictors and allocator pools paid
/// for up front — the median then resists one-off scheduling noise that
/// best-of-N would hide and mean-of-N would absorb).
fn median_of_3<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = f(); // warmup
    let mut times = [0.0f64; 3];
    for t in &mut times {
        let t0 = Instant::now();
        out = f();
        *t = t0.elapsed().as_secs_f64();
    }
    times.sort_by(f64::total_cmp);
    (times[1], out)
}

fn runner_scaling_section() -> Json {
    // A fixed sweep of quality cells: (BNP ∪ UNC algorithms) × 8 RGNOS
    // graphs at v=300. Per-cell work is identical in both runs; only the
    // worker count changes.
    let algos: Vec<_> = registry::bnp().into_iter().chain(registry::unc()).collect();
    let graphs: Vec<_> = (0..8u64)
        .map(|s| rgnos::generate(RgnosParams::new(300, 1.0, 3, 100 + s)))
        .collect();
    let cells: Vec<(usize, usize)> = (0..algos.len())
        .flat_map(|ai| (0..graphs.len()).map(move |gi| (ai, gi)))
        .collect();
    let run_cell = |(ai, gi): (usize, usize)| {
        let env = Env::bnp(32);
        algos[ai]
            .schedule(&graphs[gi], &env)
            .unwrap()
            .schedule
            .makespan()
    };

    let (serial_s, serial) = median_of_3(|| par::parallel_map_with(1, cells.clone(), run_cell));
    // On a small host a timing comparison is meaningless (too few cores to
    // clear the bar); still run the sweep on ≥2 workers so the threaded
    // path's determinism is exercised, but flag the numbers.
    let cores = par::worker_count();
    let workers = cores.max(2);
    let (parallel_s, parallel) =
        median_of_3(|| par::parallel_map_with(workers, cells.clone(), run_cell));
    assert_eq!(serial, parallel, "parallel runner changed results");
    let speedup = serial_s / parallel_s;
    let meaningful = cores >= 4;
    println!(
        "runner: {} cells, serial {serial_s:.3}s vs {workers} workers {parallel_s:.3}s \
         → {speedup:.1}x (median of 3 after warmup){}",
        cells.len(),
        if meaningful {
            ""
        } else {
            " — <4 cores: determinism check only, speedup bar exempt"
        }
    );
    if meaningful {
        assert!(
            speedup >= 1.5,
            "acceptance bar: the work-stealing runner must be ≥1.5x faster than \
             1 worker on a ≥4-core host, got {speedup:.1}x on {workers} workers"
        );
    }
    Json::obj([
        ("cells", Json::Int(cells.len() as i64)),
        ("host_cores", Json::Int(cores as i64)),
        ("workers", Json::Int(workers as i64)),
        ("serial_s", Json::Num(serial_s)),
        ("parallel_s", Json::Num(parallel_s)),
        ("speedup", Json::Num(speedup)),
        ("speedup_meaningful", Json::Bool(meaningful)),
    ])
}

fn bnb_parallel_speedup_section() -> Json {
    // Instances curated to *prove* within the node budget on both paths —
    // a capped search's wall time measures the cap, not the search. Serial
    // counters are recorded (they are deterministic; parallel counts vary
    // with steal timing and per-worker duplicate detection).
    let sweep: &[(usize, f64, u32, u64, usize)] = &[
        (22, 0.1, 3, 7, 4),
        (24, 1.0, 3, 42, 4),
        (14, 1.0, 4, 7, 4),
        (16, 1.0, 2, 7, 2),
    ];
    let cores = par::worker_count();
    let workers = cores.max(2);
    let meaningful = cores >= 4;
    let mut rows = Vec::new();
    let mut total_serial = 0.0f64;
    let mut total_parallel = 0.0f64;
    let mut total_nodes = 0u64;
    let mut total_pruned = 0u64;
    for &(v, ccr, gpar, seed, procs) in sweep {
        let g = rgnos::generate(RgnosParams::new(v, ccr, gpar, seed));
        let params = |threads: usize| OptimalParams {
            procs: Some(procs),
            node_limit: 4_000_000,
            heuristic_incumbent: true,
            threads: Some(threads),
        };
        let (serial_s, serial) = median_of_3(|| solve(&g, &params(1)));
        let (parallel_s, parallel) = median_of_3(|| solve(&g, &params(workers)));
        assert!(
            serial.proven && parallel.proven,
            "sweep instance must prove"
        );
        assert_eq!(
            serial.length, parallel.length,
            "parallel B&B optimum diverged on v={v} ccr={ccr} seed={seed}"
        );
        let speedup = serial_s / parallel_s;
        total_serial += serial_s;
        total_parallel += parallel_s;
        total_nodes += serial.nodes_expanded;
        total_pruned += serial.pruned;
        println!(
            "bnb v={v} ccr={ccr} seed={seed} procs={procs}: serial {serial_s:.4}s \
             ({} nodes) vs {workers} workers {parallel_s:.4}s → {speedup:.1}x",
            serial.nodes_expanded
        );
        rows.push(Json::obj([
            ("nodes", Json::Int(v as i64)),
            ("ccr", Json::Num(ccr)),
            ("seed", Json::Int(seed as i64)),
            ("procs", Json::Int(procs as i64)),
            ("serial_s", Json::Num(serial_s)),
            ("parallel_s", Json::Num(parallel_s)),
            ("speedup", Json::Num(speedup)),
            ("length", Json::Int(serial.length as i64)),
            ("nodes_expanded", Json::Int(serial.nodes_expanded as i64)),
            ("pruned", Json::Int(serial.pruned as i64)),
        ]));
    }
    let speedup = total_serial / total_parallel;
    println!(
        "bnb sweep total: serial {total_serial:.3}s vs {workers} workers \
         {total_parallel:.3}s → {speedup:.1}x{}",
        if meaningful {
            ""
        } else {
            " — <4 cores: equivalence check only, speedup bar exempt"
        }
    );
    if meaningful {
        assert!(
            speedup >= 1.5,
            "acceptance bar: parallel branch-and-bound must be ≥1.5x faster than \
             its serial path on a ≥4-core host, got {speedup:.1}x on {workers} workers"
        );
    }
    Json::obj([
        ("host_cores", Json::Int(cores as i64)),
        ("workers", Json::Int(workers as i64)),
        ("serial_s", Json::Num(total_serial)),
        ("parallel_s", Json::Num(total_parallel)),
        ("speedup", Json::Num(speedup)),
        ("speedup_meaningful", Json::Bool(meaningful)),
        ("nodes_expanded", Json::Int(total_nodes as i64)),
        ("pruned", Json::Int(total_pruned as i64)),
        ("instances", Json::Arr(rows)),
    ])
}

/// Interleaved median-of-N A/B timing with retries — the same warmup +
/// median protocol the scaling gates use. Each timed sample covers
/// `runs_per_sample` consecutive invocations so a sample is long enough
/// (tens of ms) for a 2% resolution; samples interleave the two legs
/// *and alternate which leg goes first* (frequency scaling and allocator
/// reuse systematically favor whichever closure runs first in a pair —
/// a fixed order shows up as a phantom percent-level "overhead"); the
/// attempt's ratio is median/median, robust against outliers in *either*
/// direction (a one-off turbo-boosted run must not poison the estimate
/// the way it would a running minimum). The best attempt wins; the gate
/// passes as soon as one attempt clears.
fn overhead_ratio(
    label: &str,
    samples: usize,
    runs_per_sample: usize,
    mut pre: impl FnMut(),
    mut instrumented: impl FnMut(),
) -> (f64, f64, f64) {
    fn median(xs: &mut [f64]) -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    }
    // Warmup: page-in, branch predictors, allocator state.
    pre();
    instrumented();
    let mut best: Option<(f64, f64, f64)> = None;
    for attempt in 1..=TRACE_OVERHEAD_ATTEMPTS {
        let mut pre_s = Vec::with_capacity(samples);
        let mut new_s = Vec::with_capacity(samples);
        for i in 0..samples {
            let timed = |leg: &mut dyn FnMut(), out: &mut Vec<f64>| {
                let t0 = Instant::now();
                for _ in 0..runs_per_sample {
                    leg();
                }
                out.push(t0.elapsed().as_secs_f64());
            };
            if i % 2 == 0 {
                timed(&mut pre, &mut pre_s);
                timed(&mut instrumented, &mut new_s);
            } else {
                timed(&mut instrumented, &mut new_s);
                timed(&mut pre, &mut pre_s);
            }
        }
        let per = runs_per_sample as f64;
        let pre_med = median(&mut pre_s) / per;
        let new_med = median(&mut new_s) / per;
        let ratio = new_med / pre_med;
        println!(
            "trace-overhead {label}: preobs {pre_med:.4}s vs instrumented {new_med:.4}s \
             → ratio {ratio:.4} (attempt {attempt}, median of {samples}×{runs_per_sample})"
        );
        if best.is_none_or(|(_, _, r)| ratio < r) {
            best = Some((pre_med, new_med, ratio));
        }
        if ratio <= TRACE_OVERHEAD_MAX_RATIO {
            break;
        }
    }
    let (pre_med, new_med, ratio) = best.expect("at least one attempt ran");
    assert!(
        ratio <= TRACE_OVERHEAD_MAX_RATIO,
        "acceptance bar: disabled tracing must cost ≤{:.0}% on {label}, \
         got {:.2}% after {TRACE_OVERHEAD_ATTEMPTS} attempts",
        (TRACE_OVERHEAD_MAX_RATIO - 1.0) * 100.0,
        (ratio - 1.0) * 100.0
    );
    (pre_med, new_med, ratio)
}

fn trace_overhead_section() -> Json {
    // DSC leg: the 5000-node headline instance of dsc_incremental_speedup.
    let dsc = registry::by_name("DSC").unwrap();
    let env = Env::bnp(1);
    let g = rgnos::generate(RgnosParams::new(5000, 1.0, 3, 42));
    // Identity first (also the freshness check on the frozen copy): the
    // pre-obs engine must still produce today's exact placements.
    let pre_out = preobs::DscPreObs.schedule(&g, &env).unwrap();
    let new_out = dsc.schedule(&g, &env).unwrap();
    for n in g.tasks() {
        assert_eq!(
            pre_out.schedule.placement(n),
            new_out.schedule.placement(n),
            "pre-obs DSC copy diverged from the instrumented engine on task {n}"
        );
    }
    let (dsc_pre_s, dsc_new_s, dsc_ratio) = overhead_ratio(
        "DSC v=5000",
        7,
        5,
        || {
            preobs::DscPreObs.schedule(&g, &env).unwrap();
        },
        || {
            dsc.schedule(&g, &env).unwrap();
        },
    );

    // B&B leg: the headline instance of bnb_parallel_speedup, serial on
    // both sides. The counter identity is the satellite's migration proof:
    // moving `nodes_expanded`/`pruned` onto the obs registry (and splitting
    // the prune reasons) changed no search decision.
    let (v, ccr, gpar, seed, procs) = (24usize, 1.0f64, 3u32, 42u64, 4usize);
    let gb = rgnos::generate(RgnosParams::new(v, ccr, gpar, seed));
    let params = OptimalParams {
        procs: Some(procs),
        node_limit: 4_000_000,
        heuristic_incumbent: true,
        threads: Some(1),
    };
    let pre_bnb = preobs::bnb_solve_serial(&gb, procs, params.node_limit);
    let new_bnb = solve(&gb, &params);
    assert!(pre_bnb.proven && new_bnb.proven, "headline instance proves");
    assert_eq!(pre_bnb.length, new_bnb.length, "B&B optimum diverged");
    assert_eq!(
        pre_bnb.nodes_expanded, new_bnb.nodes_expanded,
        "registry-backed expansion counter diverged from the pre-obs field"
    );
    assert_eq!(
        new_bnb.pruned,
        new_bnb.pruned_bound + new_bnb.pruned_duplicate,
        "prune breakdown must partition the aggregate"
    );
    assert_eq!(
        pre_bnb.pruned, new_bnb.pruned,
        "registry-backed prune counter diverged from the pre-obs field"
    );
    let (bnb_pre_s, bnb_new_s, bnb_ratio) = overhead_ratio(
        "B&B v=24 serial",
        5,
        1,
        || {
            preobs::bnb_solve_serial(&gb, procs, params.node_limit);
        },
        || {
            solve(&gb, &params);
        },
    );

    Json::obj([
        ("max_ratio", Json::Num(TRACE_OVERHEAD_MAX_RATIO)),
        (
            "dsc",
            Json::obj([
                ("nodes", Json::Int(5000)),
                ("preobs_s", Json::Num(dsc_pre_s)),
                ("instrumented_s", Json::Num(dsc_new_s)),
                ("ratio", Json::Num(dsc_ratio)),
            ]),
        ),
        (
            "bnb",
            Json::obj([
                ("nodes", Json::Int(v as i64)),
                ("procs", Json::Int(procs as i64)),
                ("preobs_s", Json::Num(bnb_pre_s)),
                ("instrumented_s", Json::Num(bnb_new_s)),
                ("ratio", Json::Num(bnb_ratio)),
                ("nodes_expanded", Json::Int(new_bnb.nodes_expanded as i64)),
                ("pruned", Json::Int(new_bnb.pruned as i64)),
            ]),
        ),
    ])
}

/// Release-mode spot check of the composable-scheduler rewire: the six
/// presets against the retained monoliths at paper scale (the exhaustive
/// small-instance sweep lives in `dagsched-bench`'s tests), plus the size
/// of the composed space the registry grammar opens. Any placement
/// divergence panics — `compose_presets_equiv` is only ever written as
/// `true`, but the field pins the fact into the trend record.
fn compose_equivalence_section() -> Json {
    let pairs: Vec<(Box<dyn Scheduler>, Box<dyn Scheduler>)> = vec![
        (Box::new(dagsched_core::bnp::hlfet()), Box::new(HlfetMono)),
        (Box::new(dagsched_core::bnp::ish()), Box::new(IshMono)),
        (
            Box::new(dagsched_core::bnp::mcp()),
            Box::new(McpMono::default()),
        ),
        (Box::new(dagsched_core::bnp::etf()), Box::new(EtfMono)),
        (Box::new(dagsched_core::bnp::dls()), Box::new(DlsMono)),
        (Box::new(dagsched_core::bnp::last()), Box::new(LastMono)),
    ];
    let env = Env::bnp(8);
    let mut instances = 0usize;
    for &v in &[100usize, 300] {
        for &ccr in &[0.1f64, 1.0, 10.0] {
            for seed in 0..3u64 {
                let g = rgnos::generate(RgnosParams::new(v, ccr, 3, seed));
                for (new, old) in &pairs {
                    let a = old.schedule(&g, &env).expect("monolith schedules");
                    let b = new.schedule(&g, &env).expect("preset schedules");
                    for n in g.tasks() {
                        assert_eq!(
                            a.schedule.placement(n),
                            b.schedule.placement(n),
                            "{} diverged from its monolith on v={v} ccr={ccr} seed={seed}",
                            new.name(),
                        );
                    }
                }
                instances += 1;
            }
        }
    }
    let variants_total = registry::enumerate().len();
    println!(
        "compose: 6 presets placement-identical to monoliths on {instances} paper-scale \
         instances; {variants_total} composed variants enumerable"
    );
    Json::obj([
        ("presets_equiv", Json::Bool(true)),
        ("instances", Json::Int(instances as i64)),
        ("variants_total", Json::Int(variants_total as i64)),
    ])
}

fn paper_sweep_budget_section() -> Json {
    let cfg = dagsched_bench::Config::from_env();
    let budget = if cfg.full {
        FULL_SWEEP_BUDGET_S
    } else {
        QUICK_SWEEP_BUDGET_S
    };
    let t0 = Instant::now();
    let tables = dagsched_bench::experiments::table6::run(&cfg);
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(tables.len(), 1, "Table 6 renders as one table");
    println!(
        "paper sweep (Table 6, full={}): {elapsed:.1}s (budget {budget:.0}s)",
        cfg.full
    );
    assert!(
        elapsed <= budget,
        "Table-6 replication blew its wall-clock budget: {elapsed:.1}s > {budget:.0}s \
         (full={}) — a per-evaluation cost regression somewhere in the roster",
        cfg.full
    );
    Json::obj([
        ("full", Json::Bool(cfg.full)),
        ("elapsed_s", Json::Num(elapsed)),
        ("budget_s", Json::Num(budget)),
    ])
}

/// In-process daemon + loadgen replay: the serving path's correctness
/// gates (byte-identity under load, cache effectiveness on a repeated
/// suite) with throughput/latency recorded alongside, never gated.
fn serve_throughput_section() -> Json {
    use dagsched_serve::loadgen::{self, LoadgenParams};
    use dagsched_serve::server::{start, Config};

    let handle = start(Config::default()).expect("bind serve daemon");
    let params = LoadgenParams {
        addr: handle.addr().to_string(),
        qps: 500.0,
        conns: 2,
        repeat: 3, // repeats 2..3 should be pure cache hits
        seed: 42,
        verify: true,
        algos: vec!["MCP".into(), "DSC".into(), "BSA".into()],
        graphs: [0.1, 1.0, 10.0]
            .iter()
            .map(|&ccr| rgnos::generate(RgnosParams::new(40, ccr, 2, 42)))
            .collect(),
        shutdown: false,
    };
    let report = loadgen::run(&params).expect("loadgen runs");
    handle.shutdown();

    assert_eq!(
        report.errors, 0,
        "serve replay must be error-free and byte-identical to in-process \
         scheduling; first failures: {:?}",
        report.error_detail
    );
    let hit_rate = report.cache_hits as f64 / report.requests as f64;
    assert!(
        hit_rate > 0.0,
        "a 3× repeated suite must hit the schedule cache"
    );
    Json::obj([
        ("requests", Json::Int(report.requests as i64)),
        ("errors", Json::Int(report.errors as i64)),
        ("cache_hit_rate", Json::Num(hit_rate)),
        ("elapsed_s", Json::Num(report.elapsed.as_secs_f64())),
        ("throughput_rps", Json::Num(report.throughput_rps)),
        ("p50_us", Json::Int(report.p50_us as i64)),
        ("p95_us", Json::Int(report.p95_us as i64)),
        ("p99_us", Json::Int(report.p99_us as i64)),
    ])
}

/// The current git commit (short SHA), or `"unknown"` outside a checkout.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, no external deps).
fn utc_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs();
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Pull a numeric field out of a `Json::Obj` by key.
fn field(j: &Json, key: &str) -> Json {
    match j {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .expect("field present"),
        _ => panic!("not an object"),
    }
}

fn main() {
    let dsc = dsc_speedup_section();
    let dsc_inc = incremental_speedup_section(
        "DSC",
        &DscScanBaseline,
        &[(2000, 42), (5000, 42), (5000, 43)],
        5000,
        2.0,
    );
    let md_inc = incremental_speedup_section(
        "MD",
        &MdScan,
        &[(1000, 42), (2000, 42), (2000, 43)],
        2000,
        3.0,
    );
    let dcp_inc = incremental_speedup_section(
        "DCP",
        &DcpScan,
        &[(1000, 42), (2000, 42), (2000, 43)],
        2000,
        3.0,
    );
    let bsa = bsa_speedup_section();
    let runner = runner_scaling_section();
    let bnb = bnb_parallel_speedup_section();
    let overhead = trace_overhead_section();
    let compose = compose_equivalence_section();
    let sweep = paper_sweep_budget_section();
    let serve = serve_throughput_section();
    let report = Json::obj([
        ("schema", Json::Int(8)),
        ("suite", Json::str("rgnos ccr=1.0 par=3")),
        ("dsc_speedup", dsc.clone()),
        ("dsc_incremental_speedup", dsc_inc.clone()),
        ("md_incremental_speedup", md_inc.clone()),
        ("dcp_incremental_speedup", dcp_inc.clone()),
        ("bsa_speedup", bsa.clone()),
        ("algo_runtimes", algo_runtimes_section()),
        ("runner_scaling", runner.clone()),
        ("bnb_parallel_speedup", bnb.clone()),
        ("trace_overhead", overhead.clone()),
        ("compose_equivalence", compose.clone()),
        ("paper_sweep_budget", sweep.clone()),
        ("serve_throughput", serve.clone()),
    ]);
    let path = dagsched_bench::config::bench_out().unwrap_or_else(|| {
        format!("{}/../../BENCH_RESULTS.json", env!("CARGO_MANIFEST_DIR")).into()
    });
    let path = path.display().to_string();
    std::fs::write(&path, report.pretty()).expect("write BENCH_RESULTS.json");
    println!("wrote {path}");

    // Append the run's headline numbers to the trend file: one JSONL record
    // per run, keyed by commit and date, never overwritten.
    let record = Json::obj([
        ("schema", Json::Int(8)),
        ("sha", Json::str(git_sha())),
        ("date", Json::str(utc_date())),
        ("dsc_speedup_v1000", field(&dsc, "headline_speedup_v1000")),
        (
            "dsc_incremental_speedup_v5000",
            field(&dsc_inc, "headline_speedup_v5000"),
        ),
        (
            "md_incremental_speedup_v2000",
            field(&md_inc, "headline_speedup_v2000"),
        ),
        (
            "dcp_incremental_speedup_v2000",
            field(&dcp_inc, "headline_speedup_v2000"),
        ),
        (
            "bsa_speedup_v500_ccr01",
            field(&bsa, "headline_speedup_v500_ccr01"),
        ),
        ("runner_speedup", field(&runner, "speedup")),
        ("runner_workers", field(&runner, "workers")),
        ("runner_cells", field(&runner, "cells")),
        ("bnb_parallel_speedup", field(&bnb, "speedup")),
        ("bnb_nodes_expanded", field(&bnb, "nodes_expanded")),
        ("bnb_pruned", field(&bnb, "pruned")),
        (
            "trace_overhead_dsc",
            field(&field(&overhead, "dsc"), "ratio"),
        ),
        (
            "trace_overhead_bnb",
            field(&field(&overhead, "bnb"), "ratio"),
        ),
        ("paper_sweep_full", field(&sweep, "full")),
        ("paper_sweep_s", field(&sweep, "elapsed_s")),
        ("compose_presets_equiv", field(&compose, "presets_equiv")),
        ("compose_variants_total", field(&compose, "variants_total")),
        ("serve_throughput_rps", field(&serve, "throughput_rps")),
        ("serve_p50_us", field(&serve, "p50_us")),
        ("serve_p95_us", field(&serve, "p95_us")),
        ("serve_p99_us", field(&serve, "p99_us")),
        ("serve_requests", field(&serve, "requests")),
        ("serve_errors", field(&serve, "errors")),
        ("serve_cache_hit_rate", field(&serve, "cache_hit_rate")),
    ]);
    let history = dagsched_bench::config::bench_history().unwrap_or_else(|| {
        format!("{}/../../BENCH_HISTORY.jsonl", env!("CARGO_MANIFEST_DIR")).into()
    });
    let history = history.display().to_string();
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history)
        .expect("open BENCH_HISTORY.jsonl");
    writeln!(f, "{}", record.compact()).expect("append BENCH_HISTORY.jsonl");
    println!("appended {history}");
}
