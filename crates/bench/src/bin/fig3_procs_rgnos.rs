//! Regenerates Figure 3(a-b) of the paper (processors used on RGNOS).
fn main() {
    let cfg = dagsched_bench::Config::from_env();
    dagsched_bench::experiments::print_tables(&dagsched_bench::experiments::figs::fig3(&cfg));
}
