//! Regenerates Table 6 of the paper (running times on RGNOS).
fn main() {
    let cfg = dagsched_bench::Config::from_env();
    dagsched_bench::experiments::print_tables(&dagsched_bench::experiments::table6::run(&cfg));
}
