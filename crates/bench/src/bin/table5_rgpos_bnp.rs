//! Regenerates Table 5 of the paper (RGPOS degradation, BNP class).
fn main() {
    let cfg = dagsched_bench::Config::from_env();
    let t = dagsched_bench::experiments::rgpos::run(&cfg, dagsched_core::AlgoClass::Bnp);
    dagsched_bench::experiments::print_tables(&t);
}
