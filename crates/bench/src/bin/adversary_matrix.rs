// Examples and bench binaries own their stdout (terminal reports).
#![allow(clippy::print_stdout)]
//! All-pairs adversarial search → dominance matrix → archived instances.
//!
//! For every ordered scheduler pair in a class this binary searches graph
//! space for the instance maximizing `L_target / L_baseline`
//! (`dagsched-adversary`), renders the per-class dominance matrix, and
//! archives every discovered instance as TGF under `examples/adversarial/`
//! (override the directory with `TASKBENCH_ADV_DIR`). Each archived file is
//! immediately read back from disk and re-verified by rescheduling both
//! algorithms to the recorded makespans.
//!
//! Quick mode covers the UNC and APN classes (APN pairs became affordable
//! with the incremental-BSA message-layer overhaul — per-evaluation cost
//! used to be the blocker); `TASKBENCH_FULL=1` adds BNP and raises the
//! per-cell evaluation budget. Cells run on the work-stealing runtime
//! (`bench::par` over `bench::ws` — uneven cells migrate to idle workers
//! instead of pinning a static share of the sweep) and derive their seeds
//! from the pair names, so stdout and every archived file are
//! byte-identical across runs and thread counts with the same seed and
//! budget — wall-clock goes to stderr only.
//!
//! Acceptance gate: at least one UNC pair must reach a makespan ratio
//! ≥ 1.10 on a ≤ 60-node instance.

use dagsched_adversary::{archive, matrix, Budget};
use dagsched_bench::par;
use dagsched_core::AlgoClass;
use std::path::PathBuf;
use std::time::Instant;

fn out_dir() -> PathBuf {
    dagsched_bench::config::adversary_dir().unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/adversarial")
    })
}

fn main() {
    let cfg = dagsched_bench::Config::from_env();
    let budget = if cfg.full {
        Budget::full(cfg.seed)
    } else {
        Budget::quick(cfg.seed)
    };
    let classes = if cfg.full {
        vec![AlgoClass::Unc, AlgoClass::Bnp, AlgoClass::Apn]
    } else {
        vec![AlgoClass::Unc, AlgoClass::Apn]
    };
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create archive directory");

    let t0 = Instant::now();
    let mut max_unc_ratio = 0.0f64;
    for class in classes {
        let pairs = matrix::ordered_pairs(class);
        let outcomes = par::parallel_map(pairs, |(t, b)| matrix::run_pair(class, &t, &b, &budget));

        println!("{}", matrix::dominance_table(class, &outcomes).ascii());
        for o in &outcomes {
            let g = &o.result.graph;
            assert!(
                g.num_tasks() <= budget.max_nodes,
                "instance exceeds the {}-node cap",
                budget.max_nodes
            );
            let path = dir.join(format!(
                "{}.tgf",
                archive::file_stem(class, &o.target, &o.baseline)
            ));
            std::fs::write(&path, archive::archived_pair_tgf(o)).expect("write archived instance");
            let text = std::fs::read_to_string(&path).expect("read archived instance back");
            archive::reverify_pair(&text, o).unwrap_or_else(|e| {
                panic!("re-verification failed for {}: {e}", path.display());
            });
            println!(
                "{:>8} vs {:<8} ratio {:.4}  ({} vs {}, v={} e={}, seed {})",
                o.target,
                o.baseline,
                o.result.ratio(),
                o.result.target_makespan,
                o.result.baseline_makespan,
                g.num_tasks(),
                g.num_edges(),
                o.seed,
            );
            if class == AlgoClass::Unc {
                max_unc_ratio = max_unc_ratio.max(o.result.ratio());
            }
        }
        println!();
    }

    assert!(
        max_unc_ratio >= 1.10,
        "acceptance bar: some UNC pair must reach ratio >= 1.10, best was {max_unc_ratio:.4}"
    );
    println!(
        "max UNC ratio {max_unc_ratio:.4}; instances archived under {}",
        dir.display()
    );
    eprintln!("wall time {:.1}s", t0.elapsed().as_secs_f64());
}
