//! Regenerates Table 2 of the paper (RGBOS degradation, UNC class).
fn main() {
    let cfg = dagsched_bench::Config::from_env();
    let t = dagsched_bench::experiments::rgbos::run(&cfg, dagsched_core::AlgoClass::Unc);
    dagsched_bench::experiments::print_tables(&t);
}
