// Examples and bench binaries own their stdout (terminal reports).
#![allow(clippy::print_stdout)]
//! Runs every experiment in paper order and streams all tables to stdout.
//! `TASKBENCH_FULL=1` switches to paper-scale sample counts.
use dagsched_bench::experiments as exp;
use dagsched_core::AlgoClass;

fn main() {
    let cfg = dagsched_bench::Config::from_env();
    eprintln!("taskbench run_all: seed={:#x} full={}", cfg.seed, cfg.full);
    let sections: Vec<(&str, Vec<dagsched_metrics::Table>)> = vec![
        ("Table 1", exp::table1::run(&cfg)),
        ("Table 2", exp::rgbos::run(&cfg, AlgoClass::Unc)),
        ("Table 3", exp::rgbos::run(&cfg, AlgoClass::Bnp)),
        ("Table 4", exp::rgpos::run(&cfg, AlgoClass::Unc)),
        ("Table 5", exp::rgpos::run(&cfg, AlgoClass::Bnp)),
        ("Table 6", exp::table6::run(&cfg)),
        ("Figure 2", exp::figs::fig2(&cfg)),
        ("Figure 3", exp::figs::fig3(&cfg)),
        ("Figure 4", exp::figs::fig4(&cfg)),
        ("Topology", exp::topology::run(&cfg)),
        ("UNC+CS", exp::unc_cs::run(&cfg)),
        ("Ablations", exp::ablate::run(&cfg)),
    ];
    for (name, tables) in sections {
        eprintln!("--- {name} ---");
        exp::print_tables(&tables);
    }
}
