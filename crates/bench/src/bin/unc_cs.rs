//! The BNP vs UNC+CS study proposed in the paper's conclusions (§7).
fn main() {
    let cfg = dagsched_bench::Config::from_env();
    dagsched_bench::experiments::print_tables(&dagsched_bench::experiments::unc_cs::run(&cfg));
}
