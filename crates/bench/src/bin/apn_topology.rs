//! The topology-sensitivity experiment the paper describes but omits for
//! space (§6.4): APN algorithms across networks of increasing connectivity.
fn main() {
    let cfg = dagsched_bench::Config::from_env();
    dagsched_bench::experiments::print_tables(&dagsched_bench::experiments::topology::run(&cfg));
}
