//! Harness configuration from environment variables.
//!
//! This module is one of the three allowlisted `TASKBENCH_*` parse
//! helpers (with `ws::parse_workers` and `obs::env`) — the lint rule
//! `env-discipline` keeps every other file from reading the environment
//! directly, so each knob has exactly one parse and one default.

/// Output path for the perf-baseline JSON artifact
/// (`TASKBENCH_BENCH_OUT`), if set.
pub fn bench_out() -> Option<std::path::PathBuf> {
    std::env::var_os("TASKBENCH_BENCH_OUT").map(std::path::PathBuf::from)
}

/// Append-target for the perf trend history JSONL
/// (`TASKBENCH_BENCH_HISTORY`), if set.
pub fn bench_history() -> Option<std::path::PathBuf> {
    std::env::var_os("TASKBENCH_BENCH_HISTORY").map(std::path::PathBuf::from)
}

/// Output directory override for adversary-matrix archives
/// (`TASKBENCH_ADV_DIR`), if set.
pub fn adversary_dir() -> Option<std::path::PathBuf> {
    std::env::var_os("TASKBENCH_ADV_DIR").map(std::path::PathBuf::from)
}

/// Experiment sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Master seed; all per-instance seeds derive from it.
    pub seed: u64,
    /// Paper-scale sampling when true; quick (CI-sized) sweeps otherwise.
    pub full: bool,
}

impl Config {
    /// Read `TASKBENCH_SEED` / `TASKBENCH_FULL` from the environment.
    pub fn from_env() -> Config {
        let seed = std::env::var("TASKBENCH_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x1998);
        let full = std::env::var("TASKBENCH_FULL")
            .map(|v| v == "1")
            .unwrap_or(false);
        Config { seed, full }
    }

    /// Quick test config.
    pub fn quick(seed: u64) -> Config {
        Config { seed, full: false }
    }

    /// RGNOS samples per graph size: (ccr, parallelism) pairs.
    pub fn rgnos_points(&self) -> Vec<(f64, u32)> {
        if self.full {
            let mut v = Vec::new();
            for &ccr in &dagsched_suites::rgnos::CCRS {
                for &par in &dagsched_suites::rgnos::PARALLELISMS {
                    v.push((ccr, par));
                }
            }
            v
        } else {
            vec![(0.1, 3), (1.0, 3), (10.0, 3)]
        }
    }

    /// RGNOS graph sizes.
    pub fn rgnos_sizes(&self) -> Vec<usize> {
        if self.full {
            dagsched_suites::rgnos::sizes()
        } else {
            vec![50, 100, 200, 300, 400, 500]
        }
    }

    /// Branch-and-bound node cap for the RGBOS optimality reference.
    ///
    /// Raised (quick 400k→1M, full 8M→32M) once the parallel search paid
    /// for the extra budget: more instances *prove* instead of reporting a
    /// best-known bound, which tightens the degradation tables.
    pub fn bnb_node_limit(&self) -> u64 {
        if self.full {
            32_000_000
        } else {
            1_000_000
        }
    }

    /// "Virtually unlimited" processor count for BNP algorithms (§6.4.2):
    /// one per task, capped at 32 (no experiment in the paper benefits from
    /// more; an uncapped ETF/DLS pair scan would be quadratically slower
    /// for zero schedule-quality change).
    pub fn bnp_unlimited_procs(&self, v: usize) -> usize {
        v.min(32)
    }

    /// The APN machine of the figures: 8 processors in a hypercube
    /// ("a 500-node task graph is scheduled to 8 processors", §6.4).
    pub fn apn_topology(&self) -> dagsched_platform::Topology {
        dagsched_platform::Topology::hypercube(3).expect("dim 3 is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_small() {
        let c = Config::quick(1);
        assert!(!c.full);
        assert_eq!(c.rgnos_points().len(), 3);
        assert!(c.bnb_node_limit() <= 1_000_000);
        assert!(
            c.bnb_node_limit()
                < Config {
                    seed: 1,
                    full: true
                }
                .bnb_node_limit()
        );
        assert_eq!(c.bnp_unlimited_procs(500), 32);
        assert_eq!(c.bnp_unlimited_procs(10), 10);
    }

    #[test]
    fn full_config_covers_the_paper_sweep() {
        let c = Config {
            seed: 1,
            full: true,
        };
        assert_eq!(c.rgnos_points().len(), 25);
        assert_eq!(c.rgnos_sizes().len(), 10);
    }

    #[test]
    fn apn_machine_has_eight_procs() {
        let c = Config::quick(1);
        assert_eq!(c.apn_topology().num_procs(), 8);
    }
}
