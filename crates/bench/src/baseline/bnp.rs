//! The six BNP list schedulers as they stood before the composable-
//! scheduler refactor — kept verbatim (minus trace instrumentation) so the
//! equivalence sweep proves the `dagsched_core::compose` presets against
//! the real former code instead of a straw man. Nothing here is wired into
//! the algorithm registry; every scheduler answers to its paper acronym
//! plus a `-monolith` suffix.
//!
//! The placement-identity sweep at the bottom is the same discipline that
//! validated the DSC/MD/DCP/BSA overhauls: every preset must match its
//! monolith on every placement across a multi-thousand-instance RGNOS
//! sweep, plus paper-scale spot checks.

use dagsched_core::common::{best_proc, drt, est_on, ReadyQueue, ReadySet, SlotPolicy};
use dagsched_core::{AlgoClass, Env, Outcome, SchedError, Scheduler};
use dagsched_graph::{TaskGraph, TaskId};
use dagsched_platform::{ProcId, Schedule};

/// The entry guard as each monolith carried it.
fn new_schedule(g: &TaskGraph, env: &Env) -> Result<Schedule, SchedError> {
    let p = env.procs();
    if p == 0 {
        return Err(SchedError::NoProcessors);
    }
    Ok(Schedule::new(g.num_tasks(), p))
}

/// HLFET as shipped: static-level [`ReadyQueue`] selection, append slots.
#[derive(Debug, Default, Clone, Copy)]
pub struct HlfetMono;

impl Scheduler for HlfetMono {
    fn name(&self) -> &'static str {
        "HLFET-monolith"
    }

    fn class(&self) -> AlgoClass {
        AlgoClass::Bnp
    }

    fn schedule(&self, g: &TaskGraph, env: &Env) -> Result<Outcome, SchedError> {
        let mut s = new_schedule(g, env)?;
        let sl = g.levels().static_levels();
        let mut ready = ReadyQueue::new(g, sl.to_vec());
        while let Some(n) = ready.peek_max() {
            let (p, est) = best_proc(g, &s, n, SlotPolicy::Append);
            s.place(n, p, est, g.weight(n))
                .expect("append EST cannot collide");
            ready.take(g, n);
        }
        Ok(Outcome {
            schedule: s,
            network: None,
        })
    }
}

/// ISH as shipped: HLFET selection plus the hole-filling pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct IshMono;

impl Scheduler for IshMono {
    fn name(&self) -> &'static str {
        "ISH-monolith"
    }

    fn class(&self) -> AlgoClass {
        AlgoClass::Bnp
    }

    fn schedule(&self, g: &TaskGraph, env: &Env) -> Result<Outcome, SchedError> {
        let mut s = new_schedule(g, env)?;
        let sl = g.levels().static_levels();
        let mut ready = ReadyQueue::new(g, sl.to_vec());
        while let Some(n) = ready.peek_max() {
            let (p, est) = best_proc(g, &s, n, SlotPolicy::Append);
            let hole_start = s.timeline(p).ready_time();
            s.place(n, p, est, g.weight(n))
                .expect("append EST cannot collide");
            ready.take(g, n);

            // Fill [hole_start, est) left-to-right with the highest-
            // static-level ready nodes that fit and are not delayed.
            let mut cursor = hole_start;
            while cursor < est {
                let mut filler: Option<(u64, TaskId, u64)> = None;
                for m in ready.iter() {
                    let start = drt(g, &s, m, p).max(cursor);
                    if start + g.weight(m) > est {
                        continue; // does not fit in the remaining hole
                    }
                    let (_, best_elsewhere) = best_proc(g, &s, m, SlotPolicy::Append);
                    if start > best_elsewhere {
                        continue; // the hole would delay this node
                    }
                    let key = (sl[m.index()], std::cmp::Reverse(m.0));
                    if filler.is_none_or(|(bk, bm, _)| key > (bk, std::cmp::Reverse(bm.0))) {
                        filler = Some((sl[m.index()], m, start));
                    }
                }
                let Some((_, m, start)) = filler else { break };
                s.place(m, p, start, g.weight(m))
                    .expect("filler fits in the hole");
                ready.take(g, m);
                cursor = start + g.weight(m);
            }
        }
        Ok(Outcome {
            schedule: s,
            network: None,
        })
    }
}

/// MCP as shipped: lexicographic ALAP-lists order, insertion slots (the
/// `insertion: false` knob is the append-only ablation).
#[derive(Debug, Clone, Copy)]
pub struct McpMono {
    pub insertion: bool,
}

impl Default for McpMono {
    fn default() -> Self {
        McpMono { insertion: true }
    }
}

/// Build each node's ascending ALAP list (own ALAP + all descendants').
fn alap_lists(g: &TaskGraph, alap: &[u64]) -> Vec<Vec<u64>> {
    g.tasks()
        .map(|n| {
            let mut list: Vec<u64> = std::iter::once(alap[n.index()])
                .chain(g.descendants(n).into_iter().map(|d| alap[d.index()]))
                .collect();
            list.sort_unstable();
            list
        })
        .collect()
}

impl Scheduler for McpMono {
    fn name(&self) -> &'static str {
        "MCP-monolith"
    }

    fn class(&self) -> AlgoClass {
        AlgoClass::Bnp
    }

    fn schedule(&self, g: &TaskGraph, env: &Env) -> Result<Outcome, SchedError> {
        let mut s = new_schedule(g, env)?;
        let alap = g.levels().alap_times();
        let lists = alap_lists(g, alap);
        let mut order: Vec<TaskId> = g.tasks().collect();
        order.sort_by(|&a, &b| lists[a.index()].cmp(&lists[b.index()]).then(a.0.cmp(&b.0)));

        let policy = if self.insertion {
            SlotPolicy::Insertion
        } else {
            SlotPolicy::Append
        };
        for n in order {
            let mut best = (ProcId(0), u64::MAX);
            for pi in 0..s.num_procs() as u32 {
                let p = ProcId(pi);
                let est = est_on(g, &s, n, p, policy);
                if est < best.1 {
                    best = (p, est);
                }
            }
            s.place(n, best.0, best.1, g.weight(n))
                .expect("chosen slot fits");
        }
        Ok(Outcome {
            schedule: s,
            network: None,
        })
    }
}

/// ETF as shipped: globally earliest (ready node, processor) pair, ties
/// toward higher static level, then smaller ids.
#[derive(Debug, Default, Clone, Copy)]
pub struct EtfMono;

impl Scheduler for EtfMono {
    fn name(&self) -> &'static str {
        "ETF-monolith"
    }

    fn class(&self) -> AlgoClass {
        AlgoClass::Bnp
    }

    fn schedule(&self, g: &TaskGraph, env: &Env) -> Result<Outcome, SchedError> {
        let mut s = new_schedule(g, env)?;
        let sl = g.levels().static_levels();
        let mut ready = ReadySet::new(g);
        while !ready.is_empty() {
            type Key = (u64, std::cmp::Reverse<u64>, u32, u32);
            let mut best: Option<Key> = None;
            let mut chosen: Option<(TaskId, ProcId, u64)> = None;
            for n in ready.iter() {
                for pi in 0..s.num_procs() as u32 {
                    let p = ProcId(pi);
                    let est = est_on(g, &s, n, p, SlotPolicy::Append);
                    let key = (est, std::cmp::Reverse(sl[n.index()]), n.0, pi);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                        chosen = Some((n, p, est));
                    }
                }
            }
            let (n, p, est) = chosen.expect("ready set non-empty");
            s.place(n, p, est, g.weight(n))
                .expect("append EST cannot collide");
            ready.take(g, n);
        }
        Ok(Outcome {
            schedule: s,
            network: None,
        })
    }
}

/// DLS as shipped: dynamic level `SL − EST` maximized over pairs.
#[derive(Debug, Default, Clone, Copy)]
pub struct DlsMono;

impl Scheduler for DlsMono {
    fn name(&self) -> &'static str {
        "DLS-monolith"
    }

    fn class(&self) -> AlgoClass {
        AlgoClass::Bnp
    }

    fn schedule(&self, g: &TaskGraph, env: &Env) -> Result<Outcome, SchedError> {
        let mut s = new_schedule(g, env)?;
        let sl = g.levels().static_levels();
        let mut ready = ReadySet::new(g);
        while !ready.is_empty() {
            type Key = (
                i64,
                std::cmp::Reverse<u64>,
                std::cmp::Reverse<u32>,
                std::cmp::Reverse<u32>,
            );
            let mut best_key: Option<Key> = None;
            let mut chosen: Option<(TaskId, ProcId, u64)> = None;
            for n in ready.iter() {
                for pi in 0..s.num_procs() as u32 {
                    let p = ProcId(pi);
                    let est = est_on(g, &s, n, p, SlotPolicy::Append);
                    let dl = sl[n.index()] as i64 - est as i64;
                    let key = (
                        dl,
                        std::cmp::Reverse(est),
                        std::cmp::Reverse(n.0),
                        std::cmp::Reverse(pi),
                    );
                    if best_key.is_none_or(|b| key > b) {
                        best_key = Some(key);
                        chosen = Some((n, p, est));
                    }
                }
            }
            let (n, p, est) = chosen.expect("ready set non-empty");
            s.place(n, p, est, g.weight(n))
                .expect("append EST cannot collide");
            ready.take(g, n);
        }
        Ok(Outcome {
            schedule: s,
            network: None,
        })
    }
}

/// LAST as shipped: max defined-fraction `D_NODE` by exact integer
/// cross-multiplication, ties by total incident weight then id.
#[derive(Debug, Default, Clone, Copy)]
pub struct LastMono;

impl Scheduler for LastMono {
    fn name(&self) -> &'static str {
        "LAST-monolith"
    }

    fn class(&self) -> AlgoClass {
        AlgoClass::Bnp
    }

    fn schedule(&self, g: &TaskGraph, env: &Env) -> Result<Outcome, SchedError> {
        let mut s = new_schedule(g, env)?;
        let total: Vec<u64> = g
            .tasks()
            .map(|n| {
                g.preds(n).iter().map(|&(_, c)| c).sum::<u64>()
                    + g.succs(n).iter().map(|&(_, c)| c).sum::<u64>()
            })
            .collect();
        let mut ready = ReadySet::new(g);
        while !ready.is_empty() {
            let n = last_select(g, &ready, &total);
            let (p, est) = best_proc(g, &s, n, SlotPolicy::Append);
            s.place(n, p, est, g.weight(n))
                .expect("append EST cannot collide");
            ready.take(g, n);
        }
        Ok(Outcome {
            schedule: s,
            network: None,
        })
    }
}

/// LAST's selection: max `D_NODE`, exact via cross-multiplication
/// (0-denominator treated as ratio 0), ties by total weight then id.
fn last_select(g: &TaskGraph, ready: &ReadySet, total: &[u64]) -> TaskId {
    let mut best: Option<(TaskId, u64, u64)> = None; // (node, defined, total)
    for n in ready.iter() {
        let defined: u64 = g.preds(n).iter().map(|&(_, c)| c).sum();
        let tot = total[n.index()];
        let better = match best {
            None => true,
            Some((bn, bd, bt)) => {
                let lhs = defined as u128 * bt.max(1) as u128;
                let rhs = bd as u128 * tot.max(1) as u128;
                lhs > rhs || (lhs == rhs && (tot > bt || (tot == bt && n.0 < bn.0)))
            }
        };
        if better {
            best = Some((n, defined, tot));
        }
    }
    best.expect("ready set non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::bnp;
    use dagsched_suites::rgnos::{self, RgnosParams};

    /// The composed presets against the retained monoliths, placement by
    /// placement, across the multi-thousand-instance RGNOS sweep — the
    /// baseline-equivalence discipline that validated every prior
    /// overhaul. Sizes × CCRs × parallelisms × seeds = 2025 instances,
    /// plus paper-scale spot checks, each compared for all six pairs.
    #[test]
    fn composed_presets_match_monoliths_across_sweep() {
        let pairs: Vec<(Box<dyn Scheduler>, Box<dyn Scheduler>)> = vec![
            (Box::new(bnp::hlfet()), Box::new(HlfetMono)),
            (Box::new(bnp::ish()), Box::new(IshMono)),
            (Box::new(bnp::mcp()), Box::new(McpMono::default())),
            (Box::new(bnp::etf()), Box::new(EtfMono)),
            (Box::new(bnp::dls()), Box::new(DlsMono)),
            (Box::new(bnp::last()), Box::new(LastMono)),
        ];
        let env = Env::bnp(4);
        let mut instances = 0usize;
        for &v in &[10usize, 18, 30, 45, 60] {
            for &ccr in &[0.1f64, 1.0, 10.0] {
                for &par in &[1u32, 3, 5] {
                    for seed in 0..45u64 {
                        let g = rgnos::generate(RgnosParams::new(v, ccr, par, seed));
                        for (new, old) in &pairs {
                            assert_identical(new.as_ref(), old.as_ref(), &g, &env);
                        }
                        instances += 1;
                    }
                }
            }
        }
        // Paper-scale spot checks on top of the small-instance sweep.
        for &(v, ccr, seed) in &[(150usize, 1.0f64, 7u64), (150, 0.1, 8)] {
            let g = rgnos::generate(RgnosParams::new(v, ccr, 3, seed));
            for (new, old) in &pairs {
                assert_identical(new.as_ref(), old.as_ref(), &g, &env);
            }
            instances += 1;
        }
        assert!(instances > 2000, "sweep must stay multi-thousand-instance");
    }

    /// The append-only ablation knob survives the rewire: the composed
    /// `SLOT=append` MCP matches the monolith's `insertion: false` leg.
    #[test]
    fn mcp_append_ablation_matches_monolith() {
        let env = Env::bnp(4);
        for &(v, ccr, seed) in &[(20usize, 0.5f64, 1u64), (40, 2.0, 2), (60, 10.0, 3)] {
            let g = rgnos::generate(RgnosParams::new(v, ccr, 3, seed));
            assert_identical(&bnp::mcp_append(), &McpMono { insertion: false }, &g, &env);
        }
    }

    /// Processor-count spread: equivalence is not an artifact of p=4.
    #[test]
    fn composed_presets_match_monoliths_across_proc_counts() {
        for p in [1usize, 2, 3, 8, 16] {
            let env = Env::bnp(p);
            for seed in 0..8u64 {
                let g = rgnos::generate(RgnosParams::new(35, 1.0, 3, seed));
                assert_identical(&bnp::hlfet(), &HlfetMono, &g, &env);
                assert_identical(&bnp::ish(), &IshMono, &g, &env);
                assert_identical(&bnp::mcp(), &McpMono::default(), &g, &env);
                assert_identical(&bnp::etf(), &EtfMono, &g, &env);
                assert_identical(&bnp::dls(), &DlsMono, &g, &env);
                assert_identical(&bnp::last(), &LastMono, &g, &env);
            }
        }
    }

    fn assert_identical(new: &dyn Scheduler, old: &dyn Scheduler, g: &TaskGraph, env: &Env) {
        let a = old.schedule(g, env).unwrap();
        let b = new.schedule(g, env).unwrap();
        for n in g.tasks() {
            assert_eq!(
                a.schedule.placement(n),
                b.schedule.placement(n),
                "{} vs {}: task {n} (graph {:?}, p={})",
                new.name(),
                old.name(),
                g.name(),
                env.procs(),
            );
        }
    }
}
