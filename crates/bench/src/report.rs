//! Machine-readable benchmark reports (`BENCH_RESULTS.json`).
//!
//! Serde is unavailable offline, so this is a tiny hand-rolled JSON value
//! tree with a serializer and a strict parser — enough for flat metric
//! records. The `perf_baseline` binary writes the workspace's
//! `BENCH_RESULTS.json` with it, and `taskbench bench-history` reads the
//! `BENCH_HISTORY.jsonl` trend file back through [`Json::parse`], so the
//! perf trajectory is tracked from the first baseline onward.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Bool(bool),
    /// Finite floats only; NaN/inf would produce invalid JSON and panic.
    Num(f64),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up a field of a [`Json::Obj`] by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of an [`Json::Int`] or [`Json::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Parse one complete JSON document. Strict: trailing input (other
    /// than whitespace), trailing commas, and bare tokens are errors. A
    /// number without `.`/`e` parses as [`Json::Int`], otherwise
    /// [`Json::Num`] — the inverse of the serializer.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serialize with 2-space indentation (diff-friendly when committed).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize onto a single line (for JSONL trend files).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Bool(_) | Json::Num(_) | Json::Int(_) | Json::Str(_) => self.write(out, 0),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out, 0);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                assert!(x.is_finite(), "non-finite number in JSON report");
                let _ = write!(out, "{x}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{}", "  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                let _ = write!(out, "\n{}]", "  ".repeat(indent));
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{}", "  ".repeat(indent + 1));
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                let _ = write!(out, "\n{}}}", "  ".repeat(indent));
            }
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            Err(format!("null at byte {pos}: reports never contain null"))
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte '{}' at {pos}", *c as char)),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        // Reports only ever escape control characters
                        // (BMP, non-surrogate); reject the rest.
                        s.push(
                            char::from_u32(code)
                                .ok_or(format!("\\u{code:04x} is not a scalar value"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always on a boundary).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                if (c as u32) < 0x20 {
                    return Err(format!("unescaped control character at byte {pos}"));
                }
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if float {
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_serializer() {
        let j = Json::obj([
            ("sha", Json::str("abc\"12\\3")),
            ("speedup", Json::Num(6.5)),
            ("neg", Json::Int(-3)),
            ("sizes", Json::Arr(vec![Json::Int(200), Json::Int(1000)])),
            ("ok", Json::Bool(true)),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj([("tab", Json::str("a\tb\n"))])),
        ]);
        assert_eq!(Json::parse(&j.compact()).unwrap(), j);
        assert_eq!(Json::parse(&j.pretty()).unwrap(), j);
    }

    #[test]
    fn parse_distinguishes_int_from_float() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("42.0").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1e2").unwrap(), Json::Num(-100.0));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "tru",
            "null",
            "\"unterminated",
            "{\"a\":1} trailing",
            "{1:2}",
            "1 2",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn get_and_as_f64_accessors() {
        let j = Json::parse(r#"{"a":1,"b":2.5,"c":"x"}"#).unwrap();
        assert_eq!(j.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.get("b").and_then(Json::as_f64), Some(2.5));
        assert_eq!(j.get("c").and_then(Json::as_f64), None);
        assert_eq!(j.get("c"), Some(&Json::str("x")));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn serializes_nested_structures() {
        let j = Json::obj([
            ("name", Json::str("dsc")),
            ("speedup", Json::Num(6.5)),
            ("sizes", Json::Arr(vec![Json::Int(200), Json::Int(1000)])),
            ("ok", Json::Bool(true)),
        ]);
        let s = j.pretty();
        assert!(s.contains("\"name\": \"dsc\""));
        assert!(s.contains("\"speedup\": 6.5"));
        assert!(s.contains("200"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\n").pretty(), "\"a\\\"b\\\\c\\n\"\n");
    }

    #[test]
    fn empty_collections() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]\n");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}\n");
    }

    #[test]
    fn compact_is_single_line() {
        let j = Json::obj([
            ("sha", Json::str("abc123")),
            ("speedup", Json::Num(6.5)),
            ("sizes", Json::Arr(vec![Json::Int(200), Json::Int(1000)])),
        ]);
        assert_eq!(
            j.compact(),
            r#"{"sha":"abc123","speedup":6.5,"sizes":[200,1000]}"#
        );
        assert!(!j.compact().contains('\n'));
    }
}
