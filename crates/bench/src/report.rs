//! Machine-readable benchmark reports (`BENCH_RESULTS.json`).
//!
//! Serde is unavailable offline, so this is a tiny hand-rolled JSON value
//! tree with a serializer — enough for flat metric records. The
//! `perf_baseline` binary writes the workspace's `BENCH_RESULTS.json` with
//! it so the perf trajectory is tracked from the first baseline onward.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Bool(bool),
    /// Finite floats only; NaN/inf would produce invalid JSON and panic.
    Num(f64),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serialize with 2-space indentation (diff-friendly when committed).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize onto a single line (for JSONL trend files).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Bool(_) | Json::Num(_) | Json::Int(_) | Json::Str(_) => self.write(out, 0),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out, 0);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                assert!(x.is_finite(), "non-finite number in JSON report");
                let _ = write!(out, "{x}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{}", "  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                let _ = write!(out, "\n{}]", "  ".repeat(indent));
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{}", "  ".repeat(indent + 1));
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                let _ = write!(out, "\n{}}}", "  ".repeat(indent));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_structures() {
        let j = Json::obj([
            ("name", Json::str("dsc")),
            ("speedup", Json::Num(6.5)),
            ("sizes", Json::Arr(vec![Json::Int(200), Json::Int(1000)])),
            ("ok", Json::Bool(true)),
        ]);
        let s = j.pretty();
        assert!(s.contains("\"name\": \"dsc\""));
        assert!(s.contains("\"speedup\": 6.5"));
        assert!(s.contains("200"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\n").pretty(), "\"a\\\"b\\\\c\\n\"\n");
    }

    #[test]
    fn empty_collections() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]\n");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}\n");
    }

    #[test]
    fn compact_is_single_line() {
        let j = Json::obj([
            ("sha", Json::str("abc123")),
            ("speedup", Json::Num(6.5)),
            ("sizes", Json::Arr(vec![Json::Int(200), Json::Int(1000)])),
        ]);
        assert_eq!(
            j.compact(),
            r#"{"sha":"abc123","speedup":6.5,"sizes":[200,1000]}"#
        );
        assert!(!j.compact().contains('\n'));
    }
}
