//! Timed, validated execution of one algorithm on one graph.

use dagsched_core::{Env, Scheduler};
use dagsched_graph::TaskGraph;
use dagsched_metrics::measures;
use dagsched_obs::{global, HistId, Metric};
use std::time::Duration;

/// The measurements the paper reports for one (algorithm, graph) run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    pub algo: &'static str,
    pub makespan: u64,
    pub nsl: f64,
    pub procs_used: usize,
    pub elapsed: Duration,
}

/// Run `algo` on `g`, validate the result (a benchmark over invalid
/// schedules would be meaningless), and collect the paper's measures.
pub fn run_timed(algo: &dyn Scheduler, g: &TaskGraph, env: &Env) -> RunRecord {
    let t0 = std::time::Instant::now();
    let out = algo
        .schedule(g, env)
        .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
    let elapsed = t0.elapsed();
    out.validate(g).unwrap_or_else(|e| {
        panic!(
            "{} produced an invalid schedule on {}: {e}",
            algo.name(),
            g.name()
        )
    });
    // One registry touch per cell (a cell is milliseconds of work, so the
    // sharded add + histogram record are noise): the profile front door
    // reads these as the sweep-shape summary.
    global().incr(Metric::RunnerCells);
    global()
        .hist(HistId::RunnerCellUs)
        .record(elapsed.as_micros() as u64);
    RunRecord {
        algo: algo.name(),
        makespan: out.schedule.makespan(),
        nsl: measures::nsl(g, &out.schedule),
        procs_used: out.schedule.procs_used(),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::registry;
    use dagsched_suites::psg;

    #[test]
    fn record_fields_are_consistent() {
        let g = psg::classic_nine();
        let algo = registry::by_name("MCP").unwrap();
        let rec = run_timed(algo.as_ref(), &g, &Env::bnp(4));
        assert_eq!(rec.algo, "MCP");
        assert!(rec.makespan >= 12);
        assert!(rec.nsl >= 1.0);
        assert!(rec.procs_used >= 1 && rec.procs_used <= 4);
    }
}
