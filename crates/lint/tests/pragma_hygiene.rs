//! The pragma engine: `lint:allow(rule) reason` / `relaxed-ok: reason`
//! grammar, target resolution, and the hygiene meta-rules (an allow
//! without a reason and an allow that suppresses nothing are themselves
//! diagnostics).

use dagsched_lint::rules::{self, lint_source};

fn rules_of(diags: &[rules::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn allow_with_reason_suppresses_same_line() {
    let src = r#"
        fn f() { println!("x"); } // lint:allow(one-artifact-stdout) demo front door
    "#;
    assert!(lint_source("crates/graph/src/util.rs", src).is_empty());
}

#[test]
fn comment_only_allow_targets_the_next_code_line() {
    let src = r#"
        // lint:allow(one-artifact-stdout) demo front door
        fn f() { println!("x"); }
    "#;
    assert!(lint_source("crates/graph/src/util.rs", src).is_empty());
}

#[test]
fn allow_without_reason_is_bare_and_does_not_suppress() {
    let src = r#"
        // lint:allow(one-artifact-stdout)
        fn f() { println!("x"); }
    "#;
    let diags = lint_source("crates/graph/src/util.rs", src);
    // Both the hygiene error and the undimmed violation are reported.
    assert_eq!(
        rules_of(&diags),
        vec![rules::BARE_ALLOW, rules::ONE_ARTIFACT_STDOUT]
    );
}

#[test]
fn relaxed_ok_without_reason_is_bare() {
    let src = r#"
        // relaxed-ok:
        fn get(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }
    "#;
    let diags = lint_source("crates/obs/src/x.rs", src);
    assert_eq!(
        rules_of(&diags),
        vec![rules::BARE_ALLOW, rules::RELAXED_ORDERING_AUDIT]
    );
}

#[test]
fn unused_allow_is_an_error() {
    let src = r#"
        // lint:allow(no-wall-clock) nothing here actually reads the clock
        fn f() {}
    "#;
    let diags = lint_source("crates/graph/src/util.rs", src);
    assert_eq!(rules_of(&diags), vec![rules::UNUSED_ALLOW]);
    assert_eq!(diags[0].line, 2);
}

#[test]
fn unknown_rule_is_an_error() {
    let src = r#"
        // lint:allow(no-such-rule) reason text
        fn f() {}
    "#;
    let diags = lint_source("crates/graph/src/util.rs", src);
    assert_eq!(rules_of(&diags), vec![rules::UNKNOWN_RULE]);
}

#[test]
fn malformed_allow_is_bare() {
    let src = r#"
        // lint:allow no parens at all
        fn f() {}
    "#;
    let diags = lint_source("crates/graph/src/util.rs", src);
    assert_eq!(rules_of(&diags), vec![rules::BARE_ALLOW]);
}

#[test]
fn allow_covers_only_its_named_rule() {
    let src = r#"
        // lint:allow(no-wall-clock) timing for a demo
        fn f() { let t = std::time::Instant::now(); println!("x"); }
    "#;
    let diags = lint_source("crates/graph/src/util.rs", src);
    // The wall-clock violation is suppressed; the stdout one is not.
    assert_eq!(rules_of(&diags), vec![rules::ONE_ARTIFACT_STDOUT]);
}

#[test]
fn prose_mentioning_the_syntax_is_not_a_pragma() {
    // Doc comments *about* pragmas must not parse as pragmas (they would
    // be flagged unused). The pragma must start the comment text.
    let src = r#"
        /// Use `lint:allow(no-wall-clock) reason` to grant an exception.
        fn f() {}
    "#;
    assert!(lint_source("crates/graph/src/util.rs", src).is_empty());
}

#[test]
fn relaxed_ok_does_not_leak_to_later_lines() {
    let src = r#"
        fn get(c: &AtomicU64) -> u64 {
            // relaxed-ok: tally read after writers join.
            let a = c.load(Ordering::Relaxed);
            let b = c.load(Ordering::Relaxed);
            a + b
        }
    "#;
    let diags = lint_source("crates/obs/src/x.rs", src);
    // Only the first load is covered; the second needs its own reason.
    assert_eq!(rules_of(&diags), vec![rules::RELAXED_ORDERING_AUDIT]);
    assert_eq!(diags[0].line, 5);
}
