//! One known-bad and one known-good fixture per rule.
//!
//! Fixtures are raw-string snippets passed straight to [`lint_source`]
//! with a synthetic path that selects the rule's allowlist branch. The
//! snippets live inside string literals, so the full-tree scan (which
//! blanks literal contents) never sees them — the bad fixtures cannot
//! leak diagnostics into `taskbench lint`.

use dagsched_lint::rules::{self, lint_source};

/// Rules firing on `src` at `path`, deduplicated, sorted.
fn fired(path: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_source(path, src).into_iter().map(|d| d.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn no_wall_clock_fires_outside_the_timing_layer() {
    let bad = r#"
        fn tick() {
            let t0 = std::time::Instant::now();
            let _ = SystemTime::now();
        }
    "#;
    assert_eq!(
        fired("crates/core/src/sched.rs", bad),
        vec![rules::NO_WALL_CLOCK]
    );
    // Same source inside the timing layer is fine.
    assert_eq!(fired("crates/obs/src/span.rs", bad), Vec::<&str>::new());
    // Mentions in comments and strings never count.
    let good = r#"
        // Instant::now is forbidden here; "SystemTime" too.
        fn tick() { let s = "Instant::now"; }
    "#;
    assert_eq!(fired("crates/core/src/sched.rs", good), Vec::<&str>::new());
}

#[test]
fn no_unordered_output_fires_in_artifact_files() {
    let bad = r#"
        use std::collections::HashMap;
        fn render(m: &HashMap<u32, u32>) -> String { String::new() }
    "#;
    assert_eq!(
        fired("crates/metrics/src/table.rs", bad),
        vec![rules::NO_UNORDERED_OUTPUT]
    );
    // Hash containers are fine in non-artifact files...
    assert_eq!(fired("crates/core/src/sched.rs", bad), Vec::<&str>::new());
    // ...and ordered containers are fine in artifact files.
    let good = r#"
        use std::collections::BTreeMap;
        fn render(m: &BTreeMap<u32, u32>) -> String { String::new() }
    "#;
    assert_eq!(
        fired("crates/metrics/src/table.rs", good),
        Vec::<&str>::new()
    );
}

#[test]
fn no_float_decisions_fires_in_core_only() {
    let bad = r#"
        fn priority(a: u64, b: u64) -> f64 { a as f64 / b as f64 }
    "#;
    assert_eq!(
        fired("crates/core/src/dnode.rs", bad),
        vec![rules::NO_FLOAT_DECISIONS]
    );
    // Floats are fine outside the decision crate (metrics, suites, ...).
    assert_eq!(
        fired("crates/metrics/src/stats.rs", bad),
        Vec::<&str>::new()
    );
    let good = r#"
        fn cross(a: (u64, u64), b: (u64, u64)) -> bool {
            (a.0 as u128) * (b.1 as u128) < (b.0 as u128) * (a.1 as u128)
        }
    "#;
    assert_eq!(fired("crates/core/src/dnode.rs", good), Vec::<&str>::new());
}

#[test]
fn unsafe_free_fires_on_use_sites_everywhere() {
    let bad = r#"
        fn f(p: *const u8) -> u8 { unsafe { *p } }
    "#;
    assert_eq!(
        fired("crates/graph/src/util.rs", bad),
        vec![rules::UNSAFE_FREE]
    );
    let good = r#"
        // the word unsafe in a comment is fine
        fn f(unsafe_name_part: u8) {}
    "#;
    assert_eq!(fired("crates/graph/src/util.rs", good), Vec::<&str>::new());
}

#[test]
fn unsafe_free_requires_forbid_in_crate_roots() {
    let bad = "//! A crate.\npub fn f() {}\n";
    let diags = lint_source("crates/demo/src/lib.rs", bad);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, rules::UNSAFE_FREE);
    assert_eq!(diags[0].line, 1);
    // Non-root files don't need the attribute.
    assert_eq!(fired("crates/demo/src/util.rs", bad), Vec::<&str>::new());
    let good = "#![forbid(unsafe_code)]\n//! A crate.\npub fn f() {}\n";
    assert_eq!(fired("crates/demo/src/lib.rs", good), Vec::<&str>::new());
}

#[test]
fn relaxed_ordering_audit_demands_a_reason() {
    let bad = r#"
        fn get(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }
    "#;
    assert_eq!(
        fired("crates/obs/src/registry.rs", bad),
        vec![rules::RELAXED_ORDERING_AUDIT]
    );
    let good = r#"
        fn get(c: &AtomicU64) -> u64 {
            // relaxed-ok: monotone tally read after writers join.
            c.load(Ordering::Relaxed)
        }
    "#;
    assert_eq!(
        fired("crates/obs/src/registry.rs", good),
        Vec::<&str>::new()
    );
    // Import lines are not use sites.
    let import = "use std::sync::atomic::Ordering::Relaxed;\n";
    assert_eq!(
        fired("crates/obs/src/registry.rs", import),
        Vec::<&str>::new()
    );
}

#[test]
fn one_artifact_stdout_fires_outside_binaries() {
    let bad = r#"
        fn log(x: u32) { println!("{x}"); print!("!"); }
    "#;
    assert_eq!(
        fired("crates/graph/src/util.rs", bad),
        vec![rules::ONE_ARTIFACT_STDOUT]
    );
    // Binaries, examples and tests own stdout.
    assert_eq!(
        fired("crates/graph/src/bin/tool.rs", bad),
        Vec::<&str>::new()
    );
    assert_eq!(fired("examples/demo.rs", bad), Vec::<&str>::new());
    assert_eq!(fired("crates/graph/tests/io.rs", bad), Vec::<&str>::new());
    // eprintln (stderr) is always fine.
    let good = r#"
        fn log(x: u32) { eprintln!("{x}"); }
    "#;
    assert_eq!(fired("crates/graph/src/util.rs", good), Vec::<&str>::new());
}

#[test]
fn env_discipline_fires_outside_the_parse_helpers() {
    let bad = r#"
        fn threads() -> usize {
            std::env::var("TASKBENCH_THREADS").unwrap().parse().unwrap()
        }
    "#;
    assert_eq!(
        fired("crates/graph/src/util.rs", bad),
        vec![rules::ENV_DISCIPLINE]
    );
    // The helpers themselves are allowlisted.
    assert_eq!(fired("crates/bench/src/config.rs", bad), Vec::<&str>::new());
    assert_eq!(fired("crates/obs/src/env.rs", bad), Vec::<&str>::new());
    // Non-TASKBENCH variables are out of scope.
    let good = r#"
        fn home() -> String { std::env::var("HOME").unwrap() }
    "#;
    assert_eq!(fired("crates/graph/src/util.rs", good), Vec::<&str>::new());
}
