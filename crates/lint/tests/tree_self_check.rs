//! The linter's own workspace is its hardest fixture: the full tree
//! must lint clean, byte-identically across runs, with the unsafe-free
//! promise visible in every crate root.

use std::path::Path;

use dagsched_lint::{find_workspace_root, lint_tree, render_json, render_text};

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

#[test]
fn full_tree_is_clean() {
    let report = lint_tree(&workspace_root()).expect("walk");
    assert!(report.files > 100, "walk found only {} files", report.files);
    assert!(
        report.clean(),
        "in-tree violations:\n{}",
        render_text(&report.diagnostics)
    );
}

#[test]
fn full_tree_runs_are_byte_identical() {
    let root = workspace_root();
    let a = lint_tree(&root).expect("first run");
    let b = lint_tree(&root).expect("second run");
    assert_eq!(a.files, b.files);
    assert_eq!(render_text(&a.diagnostics), render_text(&b.diagnostics));
    assert_eq!(render_json(&a.diagnostics), render_json(&b.diagnostics));
}

/// The unsafe-free rule's self-test: every crate root in the real tree
/// carries `#![forbid(unsafe_code)]` (ISSUE: the ws README promises "no
/// unsafe"; the compiler now holds it everywhere).
#[test]
fn every_crate_root_forbids_unsafe() {
    let root = workspace_root();
    let mut roots = vec![root.join("src/lib.rs")];
    let mut crate_dirs: Vec<_> = std::fs::read_dir(root.join("crates"))
        .expect("crates dir")
        .map(|e| e.expect("entry").path())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let direct = dir.join("src/lib.rs");
        if direct.exists() {
            roots.push(direct);
        }
        // compat/* nests one level deeper.
        if dir.ends_with("compat") {
            for sub in ["rand", "proptest", "criterion"] {
                let p = dir.join(sub).join("src/lib.rs");
                if p.exists() {
                    roots.push(p);
                }
            }
        }
    }
    roots.sort();
    roots.dedup();
    assert!(roots.len() >= 13, "only {} crate roots found", roots.len());
    for p in roots {
        let src = std::fs::read_to_string(&p).expect("read crate root");
        assert!(
            src.contains("#![forbid(unsafe_code)]"),
            "{} lacks #![forbid(unsafe_code)]",
            p.display()
        );
    }
}
