//! The invariant rules and the pragma engine.
//!
//! Each rule encodes one promise ARCHITECTURE.md makes about this
//! workspace; the rule IDs below are the names used in diagnostics and
//! in `lint:allow(...)` pragmas. Diagnostics render as
//! `file:line: RULE_ID message`, sorted and byte-stable.
//!
//! ## Pragmas
//!
//! Two comment pragmas grant audited exceptions. Both must start the
//! comment (a doc comment or prose mentioning the syntax never parses
//! as one), carry a non-empty reason, and actually suppress something —
//! a reasonless allow and an allow that suppresses nothing are
//! themselves diagnostics (`bare-allow` / `unused-allow`):
//!
//! * `lint:allow(<rule-id>) <reason>` — suppress `<rule-id>` on the
//!   same line, or (as a comment-only line) on the next code line.
//! * `relaxed-ok: <reason>` — the justification the
//!   `relaxed-ordering-audit` rule requires at every
//!   `Ordering::Relaxed` use site.

use crate::scan::{has_macro, has_token, scan, Line};

/// One `file:line: RULE_ID message` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule ID (one of [`RULES`] or a pragma meta-rule).
    pub rule: &'static str,
    pub message: String,
}

/// Invariant rules, in diagnostic-ID order.
pub const RULES: [&str; 7] = [
    ENV_DISCIPLINE,
    NO_FLOAT_DECISIONS,
    NO_UNORDERED_OUTPUT,
    NO_WALL_CLOCK,
    ONE_ARTIFACT_STDOUT,
    RELAXED_ORDERING_AUDIT,
    UNSAFE_FREE,
];

pub const NO_WALL_CLOCK: &str = "no-wall-clock";
pub const NO_UNORDERED_OUTPUT: &str = "no-unordered-output";
pub const NO_FLOAT_DECISIONS: &str = "no-float-decisions";
pub const UNSAFE_FREE: &str = "unsafe-free";
pub const RELAXED_ORDERING_AUDIT: &str = "relaxed-ordering-audit";
pub const ONE_ARTIFACT_STDOUT: &str = "one-artifact-stdout";
pub const ENV_DISCIPLINE: &str = "env-discipline";

/// Pragma meta-rules (not allowable themselves).
pub const BARE_ALLOW: &str = "bare-allow";
pub const UNUSED_ALLOW: &str = "unused-allow";
pub const UNKNOWN_RULE: &str = "unknown-rule";

/// The timing layer: the only files where wall clock may be read.
/// Everything here feeds human-facing timing output (span profiles,
/// Table-6 runtimes, loadgen latency percentiles, criterion samples) —
/// never scheduler decisions or committed artifacts.
const WALL_CLOCK_ALLOWED: [&str; 7] = [
    "crates/obs/src/span.rs",
    "crates/metrics/src/stats.rs",
    "crates/serve/src/loadgen.rs",
    "crates/compat/criterion/",
    "crates/bench/src/runner.rs",
    "crates/bench/src/bin/",
    "crates/bench/benches/",
];

/// Files that render committed artifacts or stdout output; unordered
/// iteration here silently breaks the byte-determinism contract.
const ARTIFACT_FILES: [&str; 11] = [
    "crates/adversary/src/archive.rs",
    "crates/adversary/src/matrix.rs",
    "crates/bench/src/bin/",
    "crates/bench/src/report.rs",
    "crates/graph/src/binio.rs",
    "crates/graph/src/io.rs",
    "crates/metrics/src/table.rs",
    "crates/obs/src/chrome.rs",
    "crates/platform/src/gantt.rs",
    "crates/serve/src/proto.rs",
    "src/bin/taskbench.rs",
];

/// The `TASKBENCH_*` parse helpers: the only files that may read the
/// environment directly. Everything else takes parsed values as
/// arguments.
const ENV_HELPERS: [&str; 3] = [
    "crates/bench/src/config.rs",
    "crates/obs/src/env.rs",
    "crates/ws/src/lib.rs",
];

/// Paths where `println!`/`print!` are legitimate: CLI/binary front
/// doors, examples, tests, and the criterion stand-in's report printer.
const STDOUT_ALLOWED: [&str; 4] = ["/bin/", "examples/", "/tests/", "crates/compat/criterion/"];

/// `path` matches an allowlist entry: exact file, or prefix/substring
/// for entries ending in `/` (substring so `/bin/` and `/tests/` match
/// at any depth).
fn in_list(path: &str, list: &[&str]) -> bool {
    list.iter().any(|e| {
        if e.ends_with('/') {
            path.starts_with(e) || path.contains(e)
        } else {
            path == *e
        }
    })
}

/// Whether `path` is a crate root whose `#![forbid(unsafe_code)]` the
/// unsafe-free rule demands.
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

enum PragmaKind {
    /// `lint:allow(rule)`
    Allow(String),
    /// `relaxed-ok:`
    RelaxedOk,
}

struct Pragma {
    decl_line: usize,
    /// Code line the pragma applies to (same line, or next code line for
    /// a comment-only pragma). `None` when no code follows.
    target: Option<usize>,
    kind: PragmaKind,
    reason_ok: bool,
    used: bool,
}

/// Parse every pragma in the file. Targets resolve to the pragma's own
/// line when it shares the line with code, otherwise to the next line
/// that has code.
fn parse_pragmas(lines: &[Line], diags: &mut Vec<Diagnostic>, file: &str) -> Vec<Pragma> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let text = line.comment.trim_start();
        let (kind, reason) = if let Some(rest) = text.strip_prefix("lint:allow") {
            let rest = rest.trim_start();
            let Some(inner) = rest.strip_prefix('(') else {
                diags.push(Diagnostic {
                    file: file.into(),
                    line: lineno,
                    rule: BARE_ALLOW,
                    message: "malformed lint:allow — expected `lint:allow(<rule-id>) <reason>`"
                        .into(),
                });
                continue;
            };
            let Some(close) = inner.find(')') else {
                diags.push(Diagnostic {
                    file: file.into(),
                    line: lineno,
                    rule: BARE_ALLOW,
                    message: "malformed lint:allow — missing `)`".into(),
                });
                continue;
            };
            let rule = inner[..close].trim().to_string();
            if !RULES.contains(&rule.as_str()) {
                diags.push(Diagnostic {
                    file: file.into(),
                    line: lineno,
                    rule: UNKNOWN_RULE,
                    message: format!(
                        "lint:allow names unknown rule `{rule}` (known: {})",
                        RULES.join(", ")
                    ),
                });
                continue;
            }
            (PragmaKind::Allow(rule), inner[close + 1..].trim())
        } else if let Some(rest) = text.strip_prefix("relaxed-ok") {
            match rest.trim_start().strip_prefix(':') {
                Some(reason) => (PragmaKind::RelaxedOk, reason.trim()),
                None => {
                    diags.push(Diagnostic {
                        file: file.into(),
                        line: lineno,
                        rule: BARE_ALLOW,
                        message: "malformed relaxed-ok — expected `relaxed-ok: <reason>`".into(),
                    });
                    continue;
                }
            }
        } else {
            continue;
        };
        let reason_ok = !reason.is_empty();
        if !reason_ok {
            let what = match &kind {
                PragmaKind::Allow(rule) => format!("lint:allow({rule})"),
                PragmaKind::RelaxedOk => "relaxed-ok".into(),
            };
            diags.push(Diagnostic {
                file: file.into(),
                line: lineno,
                rule: BARE_ALLOW,
                message: format!("{what} without a reason — justify the exception"),
            });
        }
        let target = if line.has_code() {
            Some(lineno)
        } else {
            lines[idx + 1..]
                .iter()
                .position(Line::has_code)
                .map(|off| lineno + 1 + off)
        };
        out.push(Pragma {
            decl_line: lineno,
            target,
            kind,
            reason_ok,
            used: false,
        });
    }
    out
}

/// Consume a pragma covering (`line`, `rule`), if any. Reasonless
/// pragmas never suppress (they were already reported as `bare-allow`).
fn suppressed(pragmas: &mut [Pragma], line: usize, rule: &str) -> bool {
    let mut hit = false;
    for p in pragmas.iter_mut() {
        if p.target != Some(line) || !p.reason_ok {
            continue;
        }
        let covers = match &p.kind {
            PragmaKind::Allow(r) => r == rule,
            PragmaKind::RelaxedOk => rule == RELAXED_ORDERING_AUDIT,
        };
        if covers {
            p.used = true;
            hit = true;
        }
    }
    hit
}

// ---------------------------------------------------------------------------
// The rule engine
// ---------------------------------------------------------------------------

/// Lint one file's source under its workspace-relative `path`.
/// Diagnostics come back sorted by (line, rule).
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let lines = scan(src);
    let mut diags = Vec::new();
    let mut pragmas = parse_pragmas(&lines, &mut diags, path);

    let push = |diags: &mut Vec<Diagnostic>,
                pragmas: &mut [Pragma],
                lineno: usize,
                rule: &'static str,
                message: String| {
        if !suppressed(pragmas, lineno, rule) {
            diags.push(Diagnostic {
                file: path.into(),
                line: lineno,
                rule,
                message,
            });
        }
    };

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();

        // no-wall-clock: wall clock must never reach scheduler logic or
        // artifact bytes; only the timing layer may read it.
        if !in_list(path, &WALL_CLOCK_ALLOWED)
            && (has_token(code, "Instant::now") || has_token(code, "SystemTime"))
        {
            push(
                &mut diags,
                &mut pragmas,
                lineno,
                NO_WALL_CLOCK,
                "wall clock outside the timing layer — route timing through obs::span, \
                 metrics::stats::Stopwatch or the bench/loadgen timing bins"
                    .into(),
            );
        }

        // no-unordered-output: artifact renderers must not touch
        // hash-ordered containers at all.
        if in_list(path, &ARTIFACT_FILES)
            && (has_token(code, "HashMap") || has_token(code, "HashSet"))
        {
            push(
                &mut diags,
                &mut pragmas,
                lineno,
                NO_UNORDERED_OUTPUT,
                "HashMap/HashSet in an artifact-rendering file — iteration order is \
                 unstable; use BTreeMap/BTreeSet or sort before rendering"
                    .into(),
            );
        }

        // no-float-decisions: the dnode-priority discipline — scheduler
        // decisions compare integers (u128 cross-multiplication), never
        // floats.
        if path.starts_with("crates/core/src/")
            && (has_token(code, "f32") || has_token(code, "f64"))
        {
            push(
                &mut diags,
                &mut pragmas,
                lineno,
                NO_FLOAT_DECISIONS,
                "float type in a crates/core decision path — compare integers \
                 (cross-multiply like the dnode priority) so ties and rounding \
                 are platform-independent"
                    .into(),
            );
        }

        // unsafe-free (use sites): the workspace carries no unsafe at all.
        if has_token(code, "unsafe") {
            push(
                &mut diags,
                &mut pragmas,
                lineno,
                UNSAFE_FREE,
                "unsafe code in a workspace that promises none — every crate \
                 carries #![forbid(unsafe_code)]"
                    .into(),
            );
        }

        // relaxed-ordering-audit: every Relaxed use site carries a
        // `// relaxed-ok: <reason>` justification. Import lines don't
        // count as use sites.
        if has_token(code, "Relaxed") && !code.trim_start().starts_with("use ") {
            let justified = suppressed(&mut pragmas, lineno, RELAXED_ORDERING_AUDIT);
            if !justified {
                diags.push(Diagnostic {
                    file: path.into(),
                    line: lineno,
                    rule: RELAXED_ORDERING_AUDIT,
                    message: "Ordering::Relaxed without a `// relaxed-ok: <reason>` \
                              justification — state why no acquire/release pairing \
                              is needed, or upgrade the ordering"
                        .into(),
                });
            }
        }

        // one-artifact-stdout: stdout is the artifact channel; only
        // binaries, examples, tests and the criterion stand-in print.
        if !in_list(path, &STDOUT_ALLOWED)
            && (has_macro(code, "println") || has_macro(code, "print"))
        {
            push(
                &mut diags,
                &mut pragmas,
                lineno,
                ONE_ARTIFACT_STDOUT,
                "print!/println! outside a CLI/binary module — stdout carries \
                 exactly one artifact per invocation; use eprintln! (stderr) or \
                 return the text to the caller"
                    .into(),
            );
        }

        // env-discipline: TASKBENCH_* knobs are read once, through the
        // parse helpers, so every consumer agrees on parse and default.
        if !in_list(path, &ENV_HELPERS)
            && (has_token(code, "env::var") || has_token(code, "env::var_os"))
            && line.strings.contains("TASKBENCH_")
        {
            push(
                &mut diags,
                &mut pragmas,
                lineno,
                ENV_DISCIPLINE,
                "TASKBENCH_* read outside the parse helpers — go through \
                 ws::worker_count/parse_workers, bench::Config, or obs::env"
                    .into(),
            );
        }
    }

    // unsafe-free (crate roots): the promise is compiler-enforced via
    // `#![forbid(unsafe_code)]` in every crate root. Not pragma-able.
    if is_crate_root(path) {
        let has_forbid = lines.iter().any(|l| {
            let squashed: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
            squashed.contains("#![forbid(unsafe_code)]")
        });
        if !has_forbid {
            diags.push(Diagnostic {
                file: path.into(),
                line: 1,
                rule: UNSAFE_FREE,
                message: "crate root missing #![forbid(unsafe_code)] — the workspace \
                          promises no unsafe and the compiler must hold it"
                    .into(),
            });
        }
    }

    // Pragma hygiene: a well-formed allow that suppressed nothing is an
    // error (it hides future violations or marks dead policy).
    for p in &pragmas {
        if p.reason_ok && !p.used {
            let what = match &p.kind {
                PragmaKind::Allow(rule) => format!("lint:allow({rule})"),
                PragmaKind::RelaxedOk => "relaxed-ok".into(),
            };
            diags.push(Diagnostic {
                file: path.into(),
                line: p.decl_line,
                rule: UNUSED_ALLOW,
                message: format!("{what} suppresses nothing — remove the stale pragma"),
            });
        }
    }

    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}
