#![forbid(unsafe_code)]
//! # dagsched-lint — the workspace invariant checker
//!
//! ARCHITECTURE.md promises byte-deterministic schedules, traces and
//! archives at any thread count. Those promises were enforced only
//! dynamically (equivalence sweeps, CI byte-diffs) — violations
//! surfaced *after* they shipped. This crate makes the invariants
//! statically checkable: a comment- and string-literal-aware scanner
//! ([`scan`]) walks every Rust source file in the workspace and a small
//! rule engine ([`rules`]) reports violations as deterministic
//! `file:line: RULE_ID message` diagnostics (sorted, byte-stable,
//! machine-readable with [`render_json`]).
//!
//! The rules, each guarding a named invariant:
//!
//! | Rule | Invariant it guards |
//! |------|---------------------|
//! | `no-wall-clock` | wall clock never reaches scheduler logic or artifact bytes (timing layer only) |
//! | `no-unordered-output` | artifact renderers never iterate hash-ordered containers |
//! | `no-float-decisions` | scheduler decisions compare integers, never floats |
//! | `unsafe-free` | `#![forbid(unsafe_code)]` in every crate, no `unsafe` anywhere |
//! | `relaxed-ordering-audit` | every `Ordering::Relaxed` carries a `// relaxed-ok: <reason>` |
//! | `one-artifact-stdout` | stdout carries exactly one artifact (no `println!` outside binaries) |
//! | `env-discipline` | `TASKBENCH_*` is read only through the parse helpers |
//!
//! Exceptions are granted inline — `lint:allow(<rule>) <reason>` — and
//! are themselves audited: a reasonless allow is a `bare-allow` error,
//! an allow that suppresses nothing is `unused-allow`. See [`rules`]
//! for the pragma grammar.
//!
//! The front door is `taskbench lint` (text or `--json`, nonzero exit
//! on any diagnostic) and the CI `lint` job; `crates/lint/tests/` keeps
//! every rule demonstrably live with one known-bad and one known-good
//! fixture per rule.

pub mod rules;
pub mod scan;

pub use rules::{lint_source, Diagnostic, RULES};

use std::io;
use std::path::{Path, PathBuf};

/// Result of a whole-tree lint run.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// All diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Top-level directories scanned under the workspace root.
const SCAN_DIRS: [&str; 4] = ["crates", "examples", "src", "tests"];

/// Collect every `.rs` file under the scan dirs, as sorted
/// (workspace-relative path, absolute path) pairs. `target` and hidden
/// directories are skipped.
fn collect_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    fn visit(dir: &Path, rel: &str, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
        let mut entries: Vec<_> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let child_rel = if rel.is_empty() {
                name.to_string()
            } else {
                format!("{rel}/{name}")
            };
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                visit(&path, &child_rel, out)?;
            } else if name.ends_with(".rs") {
                out.push((child_rel, path));
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    for dir in SCAN_DIRS {
        let abs = root.join(dir);
        if abs.is_dir() {
            visit(&abs, dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every Rust source file under `root` (a workspace checkout).
/// Diagnostics come back sorted by (file, line, rule) — byte-identical
/// across runs on an identical tree.
pub fn lint_tree(root: &Path) -> io::Result<Report> {
    let files = collect_files(root)?;
    let mut diagnostics = Vec::new();
    for (rel, abs) in &files {
        let src = std::fs::read_to_string(abs)?;
        diagnostics.extend(lint_source(rel, &src));
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(Report {
        files: files.len(),
        diagnostics,
    })
}

/// Find the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Render diagnostics as `file:line: RULE_ID message` lines.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}:{}: {} {}\n",
            d.file, d.line, d.rule, d.message
        ));
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics as a JSON array, one object per line (stable
/// field order, trailing newline) so CI can both parse and byte-diff it.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.rule,
            json_escape(&d.message)
        ));
    }
    out.push_str(if diags.is_empty() { "]\n" } else { "\n]\n" });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_text_is_one_line_per_diagnostic() {
        let diags = vec![Diagnostic {
            file: "a.rs".into(),
            line: 3,
            rule: rules::NO_WALL_CLOCK,
            message: "msg".into(),
        }];
        assert_eq!(render_text(&diags), "a.rs:3: no-wall-clock msg\n");
    }

    #[test]
    fn render_json_escapes_and_terminates() {
        let diags = vec![Diagnostic {
            file: "a\"b.rs".into(),
            line: 1,
            rule: rules::UNSAFE_FREE,
            message: "x\\y".into(),
        }];
        let j = render_json(&diags);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("x\\\\y"));
        assert!(j.ends_with("]\n"));
        assert_eq!(render_json(&[]), "[]\n");
    }

    #[test]
    fn workspace_root_found_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("ROADMAP.md").exists());
    }
}
