//! Comment- and string-literal-aware Rust source scanner.
//!
//! The rule engine must never fire on the *word* `unsafe` inside a doc
//! comment, nor miss a pragma because it shares a line with code — so
//! the scanner splits every source line into three channels:
//!
//! * `code` — the line with comment text removed and the *contents* of
//!   string/char literals blanked (delimiters are kept, so the code
//!   channel stays structurally recognizable, e.g. `env::var("")`);
//! * `comment` — the concatenated text of every comment on the line
//!   (pragmas are read from here);
//! * `strings` — the concatenated contents of every string literal on
//!   the line (the env-discipline rule needs to see `"TASKBENCH_*"`).
//!
//! The state machine understands line comments, nested block comments,
//! normal/byte strings with escapes, raw strings (`r"…"`, `r#"…"#`,
//! `br…`/`cr…` prefixes, any hash depth, spanning lines), char and byte
//! literals, and tells lifetimes (`'a`) apart from char literals
//! (`'a'`). It is a lexer for *this* job, not a full Rust lexer: the
//! known approximations (e.g. whitespace inside a path like
//! `Instant :: now` defeating a token match) are documented on the
//! rules that depend on them.

/// One source line split into its three channels.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code with comments removed and literal contents blanked.
    pub code: String,
    /// Concatenated comment text (without the `//` / `/*` markers).
    pub comment: String,
    /// Concatenated string-literal contents.
    pub strings: String,
}

impl Line {
    /// Whether the line carries any code (used to resolve which line a
    /// comment-only pragma applies to).
    pub fn has_code(&self) -> bool {
        !self.code.trim().is_empty()
    }
}

/// Scanner state that survives a newline.
enum St {
    Code,
    /// Block comment at a nesting depth (Rust block comments nest).
    Block(u32),
    /// Normal (or byte) string literal.
    Str,
    /// Raw string literal closed by `"` followed by this many `#`s.
    Raw(u32),
}

/// Would-be raw-string opener: the code emitted so far ends with
/// `r`/`br`/`cr` plus `hashes` trailing `#`s, at an identifier boundary.
fn raw_prefix(code: &str) -> Option<u32> {
    let trimmed = code.trim_end_matches('#');
    let hashes = (code.len() - trimmed.len()) as u32;
    let b = trimmed.as_bytes();
    let ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    match b.last() {
        Some(b'r') => {
            let at = b.len() - 1;
            let at = match at.checked_sub(1).map(|j| b[j]) {
                Some(b'b') | Some(b'c') => at - 1,
                _ => at,
            };
            match at.checked_sub(1).map(|j| b[j]) {
                Some(c) if ident(c) => None,
                _ => Some(hashes),
            }
        }
        _ => None,
    }
}

/// Split `src` into per-line channel records (1-based line `i` is
/// `scan(src)[i - 1]`).
pub fn scan(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut cur = Line::default();
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            out.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment: the rest of the line is comment text.
                    i += 2;
                    while i < chars.len() && chars[i] != '\n' {
                        cur.comment.push(chars[i]);
                        i += 1;
                    }
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::Block(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    st = match raw_prefix(&cur.code[..cur.code.len() - 1]) {
                        Some(hashes) => St::Raw(hashes),
                        None => St::Str,
                    };
                    i += 1;
                } else if c == '\'' {
                    // Char/byte literal vs lifetime.
                    let next = chars.get(i + 1).copied();
                    let is_char = match next {
                        Some('\\') => true,
                        Some(n) => n != '\'' && chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    cur.code.push('\'');
                    i += 1;
                    if is_char {
                        while i < chars.len() {
                            match chars[i] {
                                '\\' => i += 2,
                                '\'' => {
                                    cur.code.push('\'');
                                    i += 1;
                                    break;
                                }
                                '\n' => break, // malformed; resync at newline
                                _ => i += 1,
                            }
                        }
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            St::Block(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::Block(depth + 1);
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    // Keep escape sequences in the strings channel verbatim;
                    // the consumers only substring-match. A line-continuation
                    // escape leaves its newline to the main loop so line
                    // numbering stays exact.
                    cur.strings.push(c);
                    match chars.get(i + 1) {
                        Some(&'\n') | None => i += 1,
                        Some(&n) => {
                            cur.strings.push(n);
                            i += 2;
                        }
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    st = St::Code;
                    i += 1;
                } else {
                    cur.strings.push(c);
                    i += 1;
                }
            }
            St::Raw(hashes) => {
                let closes =
                    c == '"' && (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'));
                if closes {
                    cur.code.push('"');
                    for _ in 0..hashes {
                        cur.code.push('#');
                    }
                    st = St::Code;
                    i += 1 + hashes as usize;
                } else {
                    cur.strings.push(c);
                    i += 1;
                }
            }
        }
    }
    if cur.has_code() || !cur.comment.is_empty() || !cur.strings.is_empty() {
        out.push(cur);
    }
    out
}

/// Whether `tok` occurs in `code` at identifier boundaries on both sides
/// (`tok` itself may contain `::`).
pub fn has_token(code: &str, tok: &str) -> bool {
    let ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(tok) {
        let at = start + pos;
        let end = at + tok.len();
        let before_ok = at == 0 || !ident(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// Whether macro `name` is invoked in `code` (`name` at identifier
/// boundaries, immediately followed by `!` — so `println` never matches
/// inside `eprintln`).
pub fn has_macro(code: &str, name: &str) -> bool {
    let ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(name) {
        let at = start + pos;
        let end = at + name.len();
        let before_ok = at == 0 || !ident(bytes[at - 1]);
        if before_ok && bytes.get(end) == Some(&b'!') {
            return true;
        }
        start = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_leave_the_code_channel() {
        let l = scan("let x = 1; // unsafe Instant::now\n");
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].code.trim_end(), "let x = 1;");
        assert!(l[0].comment.contains("unsafe Instant::now"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let l = scan("a /* one /* two */ still */ b\n/* open\nunsafe */ c\n");
        assert_eq!(l[0].code.replace(' ', ""), "ab");
        assert!(l[1].code.trim().is_empty());
        assert!(l[1].comment.contains("open"));
        assert!(l[2].comment.contains("unsafe"));
        assert_eq!(l[2].code.trim(), "c");
    }

    #[test]
    fn string_contents_are_blanked_but_recorded() {
        let l = scan("env::var(\"TASKBENCH_X\") ; \"Instant::now\"\n");
        assert!(!l[0].code.contains("TASKBENCH_X"));
        assert!(l[0].code.contains("env::var(\"\")"));
        assert!(l[0].strings.contains("TASKBENCH_X"));
        assert!(!has_token(&l[0].code, "Instant::now"));
    }

    #[test]
    fn raw_strings_any_depth() {
        let l = scan("let s = r#\"unsafe \" quote\"#; let t = r\"x\";\n");
        assert!(!l[0].code.contains("unsafe"));
        assert!(l[0].strings.contains("unsafe \" quote"));
        assert!(l[0].strings.contains('x'));
    }

    #[test]
    fn raw_string_spans_lines_holding_state() {
        let l = scan("let s = r#\"line one\nunsafe fn evil()\n\"#; done();\n");
        assert!(l[1].code.trim().is_empty());
        assert!(l[1].strings.contains("unsafe"));
        assert!(l[2].code.contains("done()"));
    }

    #[test]
    fn byte_and_c_raw_prefixes() {
        let l = scan("let a = br#\"raw\"#; let b = b\"bytes\"; let c = cr\"c\";\n");
        assert_eq!(l[0].strings, "rawbytesc");
        assert!(!l[0].code.contains("raw"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_prefix() {
        // `var "x"` is not valid Rust, but the scanner must not treat the
        // trailing `r` of an identifier as a raw-string opener.
        let l = scan("for_var(\"TASKBENCH_Y\")\n");
        assert!(l[0].strings.contains("TASKBENCH_Y"));
        assert!(l[0].code.contains("(\"\")"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let l = scan("let c = 'x'; let n = '\\n'; fn f<'a>(v: &'a str) {}\n");
        assert!(!l[0].code.contains('x'));
        assert!(l[0].code.contains("<'a>"));
        assert!(l[0].code.contains("&'a str"));
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("use std::time::Instant;", "Instant"));
        assert!(!has_token("let unsafe_code = 1;", "unsafe"));
        assert!(has_token("x.load(Relaxed)", "Relaxed"));
        assert!(has_token("Ordering::Relaxed", "Relaxed"));
        assert!(!has_token("RelaxedCounter", "Relaxed"));
        assert!(has_token("t0 = Instant::now();", "Instant::now"));
    }

    #[test]
    fn macro_matching_excludes_eprintln() {
        assert!(has_macro("println!(\"x\")", "println"));
        assert!(!has_macro("eprintln!(\"x\")", "println"));
        assert!(!has_macro("let println = 1;", "println"));
        assert!(has_macro("print!(\"x\")", "print"));
        assert!(!has_macro("println!(\"x\")", "print"));
    }

    #[test]
    fn last_line_without_newline_is_kept() {
        let l = scan("let a = 1;\nlet b = 2;");
        assert_eq!(l.len(), 2);
        assert!(l[1].code.contains("b = 2"));
    }
}
