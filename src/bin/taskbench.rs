//! `taskbench` — command-line front end.
//!
//! ```text
//! taskbench gen  <family> [args…]        generate a graph, print TGF
//! taskbench run  <ALGO> <file.tgf> [-p N] [--topology T] [--gantt]
//! taskbench adversary <TARGET> <BASELINE|optimal> [flags]
//! taskbench info <file.tgf>              structural statistics
//! taskbench dot  <file.tgf>              Graphviz export
//! taskbench list                         the fifteen algorithms
//! ```
//!
//! Families for `gen`: `rgbos v ccr seed`, `rgnos v ccr par seed`,
//! `rgpos v ccr seed`, `cholesky n ccr`, `gauss n ccr`, `fft m ccr`,
//! `psg idx`. Topologies: `full:N`, `ring:N`, `chain:N`, `star:N`,
//! `mesh:RxC`, `torus:RxC`, `hypercube:D`.

use std::process::ExitCode;

use taskbench::prelude::*;
use taskbench::suites::{psg, rgbos, rgnos, rgpos, traced};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("taskbench: {msg}");
            eprintln!("run `taskbench help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("adversary") => cmd_adversary(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("list") => {
            let mut text = String::new();
            for algo in registry::all() {
                text.push_str(&format!("{:8} {}\n", algo.name(), algo.class()));
            }
            emit(&text);
            Ok(())
        }
        Some("help") | None => {
            emit(HELP);
            emit("\n");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Print to stdout, exiting quietly when the reader went away (e.g.
/// `taskbench list | head -3`) instead of panicking on a broken pipe.
fn emit(text: &str) {
    use std::io::Write;
    if std::io::stdout().lock().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

const HELP: &str = "\
taskbench — benchmarking task graph scheduling algorithms (Kwok & Ahmad, IPPS'98)

  taskbench gen rgbos <v> <ccr> <seed>        random graph (optimal-solvable sizes)
  taskbench gen rgnos <v> <ccr> <par> <seed>  random graph (size/CCR/width sweep)
  taskbench gen rgpos <v> <ccr> <seed>        graph with known optimal schedule
  taskbench gen cholesky <n> <ccr>            Cholesky factorization trace
  taskbench gen gauss <n> <ccr>               Gaussian elimination trace
  taskbench gen fft <m> <ccr>                 2^m-point FFT butterfly
  taskbench gen psg <0..8>                    one of the nine peer set graphs
  taskbench run <ALGO> <file.tgf> [-p N] [--topology T] [--gantt]
  taskbench adversary <TARGET> <BASELINE|optimal> [--budget N] [--seed S]
            [--max-nodes V] [--out file.tgf]     adversarial instance search
  taskbench info <file.tgf>
  taskbench dot <file.tgf>
  taskbench list";

fn parse<T: std::str::FromStr>(v: Option<&String>, what: &str) -> Result<T, String> {
    v.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("invalid {what}: `{}`", v.unwrap()))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let family = args.first().map(String::as_str).ok_or("missing family")?;
    let g = match family {
        "rgbos" => rgbos::generate(rgbos::RgbosParams {
            nodes: parse(args.get(1), "v")?,
            ccr: parse(args.get(2), "ccr")?,
            seed: parse(args.get(3), "seed")?,
        }),
        "rgnos" => rgnos::generate(rgnos::RgnosParams::new(
            parse(args.get(1), "v")?,
            parse(args.get(2), "ccr")?,
            parse(args.get(3), "parallelism")?,
            parse(args.get(4), "seed")?,
        )),
        "rgpos" => {
            let inst = rgpos::generate(rgpos::RgposParams::new(
                parse(args.get(1), "v")?,
                parse(args.get(2), "ccr")?,
                parse(args.get(3), "seed")?,
            ));
            eprintln!("# optimal length on {} procs: {}", inst.procs, inst.optimal);
            inst.graph
        }
        "cholesky" => traced::cholesky(parse(args.get(1), "n")?, parse(args.get(2), "ccr")?),
        "gauss" => {
            traced::gaussian_elimination(parse(args.get(1), "n")?, parse(args.get(2), "ccr")?)
        }
        "fft" => traced::fft(parse(args.get(1), "m")?, parse(args.get(2), "ccr")?),
        "psg" => {
            let idx: usize = parse(args.get(1), "index")?;
            psg::peer_set()
                .into_iter()
                .nth(idx)
                .ok_or("psg index out of range (0..8)")?
        }
        other => return Err(format!("unknown family `{other}`")),
    };
    emit(&taskbench::graph::io::to_tgf(&g));
    Ok(())
}

fn load(path: &str) -> Result<TaskGraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    taskbench::graph::io::from_tgf(&text).map_err(|e| format!("{path}: {e}"))
}

fn parse_topology(spec: &str) -> Result<Topology, String> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or("topology must look like kind:N")?;
    let t = match kind {
        "full" => Topology::fully_connected(rest.parse().map_err(|_| "bad N")?),
        "ring" => Topology::ring(rest.parse().map_err(|_| "bad N")?),
        "chain" => Topology::chain(rest.parse().map_err(|_| "bad N")?),
        "star" => Topology::star(rest.parse().map_err(|_| "bad N")?),
        "hypercube" => Topology::hypercube(rest.parse().map_err(|_| "bad D")?),
        "mesh" => {
            let (r, c) = rest.split_once('x').ok_or("mesh needs RxC")?;
            Topology::mesh(
                r.parse().map_err(|_| "bad rows")?,
                c.parse().map_err(|_| "bad cols")?,
            )
        }
        "torus" => {
            let (r, c) = rest.split_once('x').ok_or("torus needs RxC")?;
            Topology::torus(
                r.parse().map_err(|_| "bad rows")?,
                c.parse().map_err(|_| "bad cols")?,
            )
        }
        other => return Err(format!("unknown topology `{other}`")),
    };
    t.map_err(|e| e.to_string())
}

/// Registry lookup that lists the valid names on a miss instead of a bare
/// "unknown" error.
fn lookup_algo(name: &str) -> Result<Box<dyn Scheduler>, String> {
    registry::by_name(name).ok_or_else(|| {
        format!(
            "unknown algorithm `{name}`; valid names: {}",
            registry::names().join(", ")
        )
    })
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let algo_name = args.first().ok_or("missing algorithm name")?;
    let path = args.get(1).ok_or("missing graph file")?;
    let algo = lookup_algo(algo_name)?;
    let g = load(path)?;

    let mut procs: Option<usize> = None;
    let mut topo: Option<Topology> = None;
    let mut want_gantt = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "-p" => {
                procs = Some(parse(args.get(i + 1), "processor count")?);
                i += 2;
            }
            "--topology" => {
                topo = Some(parse_topology(args.get(i + 1).ok_or("missing topology")?)?);
                i += 2;
            }
            "--gantt" => {
                want_gantt = true;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let env = match (algo.class(), topo) {
        (AlgoClass::Apn, Some(t)) => Env::apn(t),
        (AlgoClass::Apn, None) => Env::apn(Topology::hypercube(3).expect("valid")),
        (_, _) => Env::bnp(procs.unwrap_or_else(|| g.num_tasks().min(32))),
    };
    let out = algo.schedule(&g, &env).map_err(|e| e.to_string())?;
    out.validate(&g)
        .map_err(|e| format!("internal: invalid schedule: {e}"))?;
    emit(&format!(
        "{}  on {}: makespan {}  NSL {:.3}  procs used {}\n",
        algo.name(),
        g.name(),
        out.schedule.makespan(),
        nsl(&g, &out.schedule),
        out.schedule.procs_used()
    ));
    emit(&taskbench::platform::report(&g, &out.schedule.compact_procs()).to_string());
    if want_gantt {
        emit(&gantt::listing(&out.schedule, &g));
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let g = load(args.first().ok_or("missing graph file")?)?;
    let s = taskbench::graph::GraphStats::of(&g);
    emit(&format!(
        "graph        {}\n\
         tasks        {}\n\
         edges        {}\n\
         total work   {}\n\
         total comm   {}\n\
         CCR          {:.3}\n\
         depth        {}\n\
         level width  {}\n\
         CP length    {}\n\
         CP work      {}\n\
         entries      {}\n\
         exits        {}\n",
        g.name(),
        s.tasks,
        s.edges,
        s.total_work,
        s.total_comm,
        s.ccr,
        s.depth,
        s.level_width,
        s.cp_length,
        s.cp_computation,
        s.entries,
        s.exits
    ));
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let g = load(args.first().ok_or("missing graph file")?)?;
    emit(&taskbench::graph::io::to_dot(&g));
    Ok(())
}

fn cmd_adversary(args: &[String]) -> Result<(), String> {
    use taskbench::adversary::{archive, matrix, search, Budget, Reference};

    let target_name = args.first().ok_or("missing target algorithm")?;
    let baseline_name = args.get(1).ok_or("missing baseline algorithm")?;
    let target = lookup_algo(target_name)?;
    let against_optimal = baseline_name.eq_ignore_ascii_case("optimal");
    let baseline_algo = if against_optimal {
        None
    } else {
        let b = lookup_algo(baseline_name)?;
        if b.class() != target.class() {
            return Err(format!(
                "target {} is {} but baseline {} is {}; compare within one class \
                 (or against `optimal`)",
                target.name(),
                target.class(),
                b.name(),
                b.class()
            ));
        }
        Some(b)
    };

    // The optimal bound re-solves a branch-and-bound per evaluation, so its
    // defaults are much smaller.
    let mut budget = Budget {
        max_evals: if against_optimal { 60 } else { 400 },
        seed: 0x1998,
        max_nodes: if against_optimal { 20 } else { 60 },
    };
    let mut out: Option<String> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => {
                budget.max_evals = parse(args.get(i + 1), "budget")?;
                i += 2;
            }
            "--seed" => {
                budget.seed = parse(args.get(i + 1), "seed")?;
                i += 2;
            }
            "--max-nodes" => {
                budget.max_nodes = parse(args.get(i + 1), "max-nodes")?;
                i += 2;
            }
            "--out" => {
                out = Some(args.get(i + 1).ok_or("missing output path")?.clone());
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    if budget.max_evals == 0 {
        return Err("budget must be at least 1".into());
    }
    if budget.max_nodes < 8 {
        return Err("max-nodes must be at least 8".into());
    }
    if against_optimal && budget.max_nodes > 64 {
        return Err(format!(
            "the optimal baseline supports at most 64 tasks (branch-and-bound cap); \
             --max-nodes {} is too large",
            budget.max_nodes
        ));
    }
    let reference = match &baseline_algo {
        Some(b) => Reference::Algo(b.as_ref()),
        None => Reference::Optimal {
            node_limit: 300_000,
        },
    };
    let env = matrix::env_for(target.class());
    let r = search::search(target.as_ref(), &reference, &env, &budget);
    emit(&format!(
        "{} vs {}: max ratio {:.4}  ({} vs {})  on {} (v={} e={} ccr={:.2})  \
         [{} evals, seed {}]\n",
        target.name(),
        reference.label(),
        r.ratio(),
        r.target_makespan,
        r.baseline_makespan,
        r.graph.name(),
        r.graph.num_tasks(),
        r.graph.num_edges(),
        r.graph.ccr(),
        r.evals,
        budget.seed,
    ));
    if let Some(path) = out {
        let text = archive::archived_tgf(
            target.class(),
            target.name(),
            &reference.label(),
            budget.seed,
            &r,
        );
        std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?;
        emit(&format!("wrote {path}\n"));
    }
    Ok(())
}
