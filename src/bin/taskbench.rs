//! `taskbench` — command-line front end.
//!
//! ```text
//! taskbench gen  <family> [args…]        generate a graph, print TGF
//! taskbench run  <ALGO> <file.tgf> [-p N] [--topology T] [--gantt]
//! taskbench trace <ALGO> <file.tgf> [-p N] [--topology T]
//! taskbench profile <ALGO> <file.tgf> [-p N] [--topology T] [--reps N] [--top N]
//! taskbench bench-history [file.jsonl]   perf trend table from BENCH_HISTORY
//! taskbench adversary <TARGET> <BASELINE|optimal> [flags]
//! taskbench info <file.tgf>              structural statistics
//! taskbench dot  <file.tgf>              Graphviz export
//! taskbench list                         the fifteen algorithms
//! taskbench serve [--addr H:P]           scheduling-as-a-service daemon
//! taskbench loadgen --addr H:P [flags]   replay a suite against a daemon
//! ```
//!
//! Families for `gen`: `rgbos v ccr seed`, `rgnos v ccr par seed`,
//! `rgpos v ccr seed`, `cholesky n ccr`, `gauss n ccr`, `fft m ccr`,
//! `psg idx`. Topologies: `full:N`, `ring:N`, `chain:N`, `star:N`,
//! `mesh:RxC`, `torus:RxC`, `hypercube:D`.
//!
//! **Output discipline:** stdout carries exactly one artifact per
//! invocation (a TGF file, a trace JSON, a table…); everything else —
//! progress notes, derived facts, warnings — goes to stderr through one
//! leveled path. `-q`/`--quiet` silences the notes, `-v`/`--verbose`
//! adds diagnostics; neither touches stdout, so shell pipelines and CI
//! byte-diffs see the same artifact at every level.

use std::process::ExitCode;
use std::sync::atomic::{AtomicI8, Ordering};

use taskbench::prelude::*;
use taskbench::suites::{psg, rgbos, rgnos, rgpos, traced};

/// −1 = quiet, 0 = normal, 1 = verbose. Set once at startup from the
/// global flags; read by [`note`]/[`verbose`].
static VERBOSITY: AtomicI8 = AtomicI8::new(0);

/// Progress/side-fact channel (stderr). Suppressed by `-q`.
fn note(text: &str) {
    // relaxed-ok: verbosity is written once in main before any reader
    // runs; the atomic exists only to satisfy static-mut rules.
    if VERBOSITY.load(Ordering::Relaxed) >= 0 {
        eprintln!("{text}");
    }
}

/// Diagnostic channel (stderr). Printed only with `-v`.
fn verbose(text: &str) {
    // relaxed-ok: same write-once-at-startup contract as note().
    if VERBOSITY.load(Ordering::Relaxed) >= 1 {
        eprintln!("{text}");
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Global flags may appear anywhere; strip them before dispatch.
    args.retain(|a| match a.as_str() {
        "-q" | "--quiet" => {
            // relaxed-ok: single-threaded startup, before any reader.
            VERBOSITY.store(-1, Ordering::Relaxed);
            false
        }
        "-v" | "--verbose" => {
            // relaxed-ok: single-threaded startup, before any reader.
            VERBOSITY.store(1, Ordering::Relaxed);
            false
        }
        _ => true,
    });
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("taskbench: {msg}");
            eprintln!("run `taskbench help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("bench-history") => cmd_bench_history(&args[1..]),
        Some("adversary") => cmd_adversary(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("list") => {
            let mut text = String::new();
            for algo in registry::all() {
                text.push_str(&format!("{:8} {}\n", algo.name(), algo.class()));
            }
            emit(&text);
            Ok(())
        }
        Some("variants") => cmd_variants(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("help") | None => {
            emit(HELP);
            emit("\n");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Print to stdout, exiting quietly when the reader went away (e.g.
/// `taskbench list | head -3`) instead of panicking on a broken pipe.
fn emit(text: &str) {
    use std::io::Write;
    if std::io::stdout().lock().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

const HELP: &str = "\
taskbench — benchmarking task graph scheduling algorithms (Kwok & Ahmad, IPPS'98)

  taskbench gen rgbos <v> <ccr> <seed>        random graph (optimal-solvable sizes)
  taskbench gen rgnos <v> <ccr> <par> <seed>  random graph (size/CCR/width sweep)
  taskbench gen rgpos <v> <ccr> <seed>        graph with known optimal schedule
  taskbench gen cholesky <n> <ccr>            Cholesky factorization trace
  taskbench gen gauss <n> <ccr>               Gaussian elimination trace
  taskbench gen fft <m> <ccr>                 2^m-point FFT butterfly
  taskbench gen psg <0..8>                    one of the nine peer set graphs
  taskbench run <ALGO> <file.tgf> [-p N] [--topology T] [--gantt]
  taskbench trace <ALGO> <file.tgf> [-p N] [--topology T]
            deterministic decision trace + schedule timeline (Chrome JSON, stdout)
  taskbench profile <ALGO> <file.tgf> [-p N] [--topology T] [--reps N] [--top N]
            wall-clock span profile + counter/histogram registry dump
  taskbench bench-history [file.jsonl]       perf trend table (default: repo root)
  taskbench adversary <TARGET> <BASELINE|optimal> [--budget N] [--seed S]
            [--max-nodes V] [--out file.tgf]     adversarial instance search
  taskbench info <file.tgf>
  taskbench dot <file.tgf>
  taskbench list
  taskbench variants                         the composed-scheduler space
  taskbench serve [--addr H:P] [--workers N] [--queue-cap N] [--cache-cap N]
            scheduling daemon; prints the bound address, runs until `shutdown`
  taskbench loadgen --addr H:P [--qps Q] [--conns N] [--repeat N] [--seed S]
            [--algo NAME]... [--suite rgnos|adversarial] [--verify] [--shutdown]
            replay a graph suite against a daemon; prints a JSON report
  taskbench lint [--json] [ROOT]             workspace invariant checker: scan all
            Rust sources for rule violations (nonzero exit on any diagnostic)

<ALGO> is a paper acronym (`taskbench list`) or a composed variant such as
`compose:PRIO=blevel,LIST=dynamic,SLOT=insert,SEL=ready` (`taskbench variants`).

global flags: -q/--quiet silence stderr notes, -v/--verbose add diagnostics;
stdout always carries exactly the artifact.";

fn parse<T: std::str::FromStr>(v: Option<&String>, what: &str) -> Result<T, String> {
    v.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("invalid {what}: `{}`", v.unwrap()))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let family = args.first().map(String::as_str).ok_or("missing family")?;
    let g = match family {
        "rgbos" => rgbos::generate(rgbos::RgbosParams {
            nodes: parse(args.get(1), "v")?,
            ccr: parse(args.get(2), "ccr")?,
            seed: parse(args.get(3), "seed")?,
        }),
        "rgnos" => rgnos::generate(rgnos::RgnosParams::new(
            parse(args.get(1), "v")?,
            parse(args.get(2), "ccr")?,
            parse(args.get(3), "parallelism")?,
            parse(args.get(4), "seed")?,
        )),
        "rgpos" => {
            let inst = rgpos::generate(rgpos::RgposParams::new(
                parse(args.get(1), "v")?,
                parse(args.get(2), "ccr")?,
                parse(args.get(3), "seed")?,
            ));
            note(&format!(
                "# optimal length on {} procs: {}",
                inst.procs, inst.optimal
            ));
            inst.graph
        }
        "cholesky" => traced::cholesky(parse(args.get(1), "n")?, parse(args.get(2), "ccr")?),
        "gauss" => {
            traced::gaussian_elimination(parse(args.get(1), "n")?, parse(args.get(2), "ccr")?)
        }
        "fft" => traced::fft(parse(args.get(1), "m")?, parse(args.get(2), "ccr")?),
        "psg" => {
            let idx: usize = parse(args.get(1), "index")?;
            psg::peer_set()
                .into_iter()
                .nth(idx)
                .ok_or("psg index out of range (0..8)")?
        }
        other => return Err(format!("unknown family `{other}`")),
    };
    emit(&taskbench::graph::io::to_tgf(&g));
    Ok(())
}

/// Load a TGF file. Parse failures lead with the same stable
/// machine-readable code (`[E_GRAPH_*]`) the serve protocol returns, so
/// scripts branch identically on both front ends.
fn load(path: &str) -> Result<TaskGraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    taskbench::graph::io::from_tgf(&text).map_err(|e| format!("{path}: [{}] {e}", e.code()))
}

/// One topology grammar for the whole workspace: the CLI `--topology`
/// flag and the serve protocol's platform field both resolve through
/// [`Topology::parse_spec`].
fn parse_topology(spec: &str) -> Result<Topology, String> {
    Topology::parse_spec(spec)
}

/// Registry lookup. On a miss the error leads with its stable code
/// (`[E_ALGO_UNKNOWN]` / `[E_ALGO_COMPOSE_PARSE]` — shared with the
/// serve protocol) followed by the full roster and `compose:` grammar.
fn lookup_algo(name: &str) -> Result<Box<dyn Scheduler>, String> {
    registry::lookup(name).map_err(|e| format!("[{}] {e}", e.code()))
}

/// Shared `-p` / `--topology` parsing for the run/trace/profile commands.
/// Flags this parser doesn't own are handed to `extra`; it returns how
/// many arguments it consumed (0 = unknown flag, an error).
fn parse_env_flags(
    args: &[String],
    procs: &mut Option<usize>,
    topo: &mut Option<Topology>,
    mut extra: impl FnMut(&str, Option<&String>) -> Result<usize, String>,
) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-p" => {
                *procs = Some(parse(args.get(i + 1), "processor count")?);
                i += 2;
            }
            "--topology" => {
                *topo = Some(parse_topology(args.get(i + 1).ok_or("missing topology")?)?);
                i += 2;
            }
            other => match extra(other, args.get(i + 1))? {
                0 => return Err(format!("unknown flag `{other}`")),
                n => i += n,
            },
        }
    }
    Ok(())
}

/// The environment a CLI invocation schedules in: APN algorithms get the
/// requested (or default 8-processor hypercube) topology, everything else
/// a BNP machine of `-p` (default `min(v, 32)`) processors.
fn env_for(
    algo: &dyn Scheduler,
    g: &TaskGraph,
    procs: Option<usize>,
    topo: Option<Topology>,
) -> Env {
    match (algo.class(), topo) {
        (AlgoClass::Apn, Some(t)) => Env::apn(t),
        (AlgoClass::Apn, None) => Env::apn(Topology::hypercube(3).expect("valid")),
        (_, _) => Env::bnp(procs.unwrap_or_else(|| g.num_tasks().min(32))),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let algo_name = args.first().ok_or("missing algorithm name")?;
    let path = args.get(1).ok_or("missing graph file")?;
    let algo = lookup_algo(algo_name)?;
    let g = load(path)?;

    let mut procs: Option<usize> = None;
    let mut topo: Option<Topology> = None;
    let mut want_gantt = false;
    parse_env_flags(&args[2..], &mut procs, &mut topo, |flag, _| {
        if flag == "--gantt" {
            want_gantt = true;
            Ok(1)
        } else {
            Ok(0)
        }
    })?;
    let env = env_for(algo.as_ref(), &g, procs, topo);
    verbose(&format!(
        "loaded {}: v={} e={}; scheduling with {} on {} processors",
        g.name(),
        g.num_tasks(),
        g.num_edges(),
        algo.name(),
        env.procs()
    ));
    let out = algo.schedule(&g, &env).map_err(|e| e.to_string())?;
    out.validate(&g)
        .map_err(|e| format!("internal: invalid schedule: {e}"))?;
    emit(&format!(
        "{}  on {}: makespan {}  NSL {:.3}  procs used {}\n",
        algo.name(),
        g.name(),
        out.schedule.makespan(),
        nsl(&g, &out.schedule),
        out.schedule.procs_used()
    ));
    emit(&taskbench::platform::report(&g, &out.schedule.compact_procs()).to_string());
    if want_gantt {
        emit(&gantt::listing(&out.schedule, &g));
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    use taskbench::obs::{ArgVal, ChromeTrace, MemSink};

    let algo_name = args.first().ok_or("missing algorithm name")?;
    let path = args.get(1).ok_or("missing graph file")?;
    let algo = lookup_algo(algo_name)?;
    let g = load(path)?;
    let mut procs: Option<usize> = None;
    let mut topo: Option<Topology> = None;
    parse_env_flags(&args[2..], &mut procs, &mut topo, |_, _| Ok(0))?;
    let env = env_for(algo.as_ref(), &g, procs, topo);

    let mut sink = MemSink::new();
    let out = algo
        .schedule_traced(&g, &env, &mut sink)
        .map_err(|e| e.to_string())?;
    out.validate(&g)
        .map_err(|e| format!("internal: invalid schedule: {e}"))?;
    let sched = out.schedule.compact_procs();

    // Two viewer process groups: pid 0 streams the decision narrative as
    // instants at their logical step stamps; pid 1 is the resulting
    // schedule as a Gantt chart in graph time units. Both axes are
    // deterministic, so the whole artifact byte-diffs across runs and
    // thread counts.
    let mut t = ChromeTrace::new();
    t.process_name(0, &format!("{} decisions", algo.name()));
    t.thread_name(0, 0, "decision stream");
    t.process_name(1, "schedule");
    for p in 0..sched.procs_used() {
        t.thread_name(1, p as u64, &format!("P{p}"));
    }
    for (step, ev) in sink.events.iter().enumerate() {
        t.instant(0, 0, ev.name(), step as u64, &ev.args());
    }
    for n in 0..g.num_tasks() {
        let task = TaskId(n as u32);
        let pl = sched
            .placement(task)
            .expect("validated schedule places every task");
        t.complete(
            1,
            pl.proc.index() as u64,
            &format!("n{n}"),
            pl.start,
            pl.finish - pl.start,
            &[("task", ArgVal::U(n as u64))],
        );
    }
    emit(&t.finish());
    note(&format!(
        "{} on {}: {} events, makespan {}, {} procs used \
         (load in chrome://tracing or ui.perfetto.dev)",
        algo.name(),
        g.name(),
        sink.events.len(),
        sched.makespan(),
        sched.procs_used()
    ));
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    use taskbench::obs::{global, registry::HISTS, span};

    let algo_name = args.first().ok_or("missing algorithm name")?;
    let path = args.get(1).ok_or("missing graph file")?;
    let algo = lookup_algo(algo_name)?;
    let g = load(path)?;
    let mut procs: Option<usize> = None;
    let mut topo: Option<Topology> = None;
    let mut reps: usize = 5;
    let mut top: usize = 12;
    parse_env_flags(&args[2..], &mut procs, &mut topo, |flag, val| match flag {
        "--reps" => {
            reps = parse(val, "reps")?;
            Ok(2)
        }
        "--top" => {
            top = parse(val, "top")?;
            Ok(2)
        }
        _ => Ok(0),
    })?;
    if reps == 0 {
        return Err("reps must be at least 1".into());
    }
    let env = env_for(algo.as_ref(), &g, procs, topo);

    let before = global().snapshot();
    span::drain(); // discard any stale records from this thread
    span::enable();
    let mut makespan = 0;
    for _ in 0..reps {
        let out = {
            let _s = span::span("schedule");
            algo.schedule(&g, &env).map_err(|e| e.to_string())?
        };
        let _s = span::span("validate");
        out.validate(&g)
            .map_err(|e| format!("internal: invalid schedule: {e}"))?;
        makespan = out.schedule.makespan();
    }
    span::disable();
    let recs = span::drain();
    let table = span::self_time_table(&recs);

    let mut text = format!(
        "profile: {} on {} (v={} e={}, {} procs)  reps={}  makespan={}\n\n",
        algo.name(),
        g.name(),
        g.num_tasks(),
        g.num_edges(),
        env.procs(),
        reps,
        makespan
    );
    text.push_str(&format!(
        "{:<20} {:>7} {:>12} {:>12}\n",
        "span", "count", "total ms", "self ms"
    ));
    for row in table.iter().take(top) {
        text.push_str(&format!(
            "{:<20} {:>7} {:>12.3} {:>12.3}\n",
            row.name,
            row.count,
            row.total_ns as f64 / 1e6,
            row.self_ns as f64 / 1e6
        ));
    }
    let delta = global().snapshot().since(&before);
    let counters = delta.nonzero();
    if !counters.is_empty() {
        text.push_str("\ncounters (this invocation):\n");
        for (name, v) in counters {
            text.push_str(&format!("  {name:<22} {v}\n"));
        }
    }
    let mut any_hist = false;
    for h in HISTS {
        let hist = global().hist(h);
        if !hist.is_empty() {
            if !any_hist {
                text.push_str("\nhistograms (process lifetime):\n");
                any_hist = true;
            }
            text.push_str(&format!("  {:<22} {}\n", h.name(), hist.brief()));
        }
    }
    emit(&text);
    note("profile times are wall-clock: indicative, never CI-diffed");
    Ok(())
}

/// Required fields added at each `BENCH_HISTORY.jsonl` schema version,
/// with a one-letter type tag: `s`tring, `n`umeric (int or float),
/// `i`nteger, `b`oolean. A record of schema K must carry exactly the
/// fields of versions 1..=K (plus `schema` itself) — nothing missing,
/// nothing unknown.
const HISTORY_SCHEMA: [&[(&str, u8)]; 8] = [
    &[
        ("sha", b's'),
        ("date", b's'),
        ("dsc_speedup_v1000", b'n'),
        ("runner_speedup", b'n'),
        ("runner_workers", b'i'),
        ("runner_cells", b'i'),
    ],
    &[("bsa_speedup_v500_ccr01", b'n')],
    &[
        ("dsc_incremental_speedup_v5000", b'n'),
        ("paper_sweep_full", b'b'),
        ("paper_sweep_s", b'n'),
    ],
    &[
        ("md_incremental_speedup_v2000", b'n'),
        ("dcp_incremental_speedup_v2000", b'n'),
    ],
    &[
        ("bnb_parallel_speedup", b'n'),
        ("bnb_nodes_expanded", b'i'),
        ("bnb_pruned", b'i'),
    ],
    &[("trace_overhead_dsc", b'n'), ("trace_overhead_bnb", b'n')],
    &[
        ("compose_presets_equiv", b'b'),
        ("compose_variants_total", b'i'),
    ],
    &[
        ("serve_throughput_rps", b'n'),
        ("serve_p50_us", b'i'),
        ("serve_p95_us", b'i'),
        ("serve_p99_us", b'i'),
        ("serve_requests", b'i'),
        ("serve_errors", b'i'),
        ("serve_cache_hit_rate", b'n'),
    ],
];

/// Validate one history record against [`HISTORY_SCHEMA`]; returns its
/// schema version.
fn validate_history_record(rec: &taskbench::bench::report::Json) -> Result<i64, String> {
    use taskbench::bench::report::Json;

    let fields = match rec {
        Json::Obj(fields) => fields,
        _ => return Err("record is not a JSON object".into()),
    };
    let schema = match rec.get("schema") {
        Some(Json::Int(v)) => *v,
        Some(_) => return Err("`schema` must be an integer".into()),
        None => return Err("missing `schema` field".into()),
    };
    if !(1..=HISTORY_SCHEMA.len() as i64).contains(&schema) {
        return Err(format!(
            "unknown schema version {schema} (known: 1..={})",
            HISTORY_SCHEMA.len()
        ));
    }
    let required: Vec<(&str, u8)> = HISTORY_SCHEMA[..schema as usize]
        .iter()
        .flat_map(|v| v.iter().copied())
        .collect();
    for (key, ty) in &required {
        let v = rec
            .get(key)
            .ok_or_else(|| format!("schema {schema} record is missing `{key}`"))?;
        let ok = match ty {
            b's' => matches!(v, Json::Str(_)),
            b'n' => v.as_f64().is_some(),
            b'i' => matches!(v, Json::Int(_)),
            b'b' => matches!(v, Json::Bool(_)),
            _ => unreachable!("tags are s/n/i/b"),
        };
        if !ok {
            return Err(format!("field `{key}` has the wrong type"));
        }
    }
    for (key, _) in fields {
        if key != "schema" && !required.iter().any(|(k, _)| k == key) {
            return Err(format!("unknown field `{key}` for schema {schema}"));
        }
    }
    Ok(schema)
}

fn cmd_bench_history(args: &[String]) -> Result<(), String> {
    use taskbench::bench::report::Json;

    let path = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_HISTORY.jsonl");
    if let Some(flag) = args.iter().find(|a| a.starts_with('-')) {
        return Err(format!("unknown flag `{flag}`"));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;

    let mut records: Vec<(i64, Json)> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let rec = Json::parse(line).map_err(|e| format!("{path}:{lineno}: {e}"))?;
        let schema = validate_history_record(&rec).map_err(|e| format!("{path}:{lineno}: {e}"))?;
        records.push((schema, rec));
    }
    if records.is_empty() {
        return Err(format!("{path}: no records"));
    }

    // Short header per column; `-` marks fields the record's schema
    // predates. Ratios >= baseline render with two decimals.
    let cols: [(&str, &str); 10] = [
        ("dsc", "dsc_speedup_v1000"),
        ("dsc-inc", "dsc_incremental_speedup_v5000"),
        ("md-inc", "md_incremental_speedup_v2000"),
        ("dcp-inc", "dcp_incremental_speedup_v2000"),
        ("bsa", "bsa_speedup_v500_ccr01"),
        ("runner", "runner_speedup"),
        ("bnb-par", "bnb_parallel_speedup"),
        ("ovh-dsc", "trace_overhead_dsc"),
        ("ovh-bnb", "trace_overhead_bnb"),
        ("srv-rps", "serve_throughput_rps"),
    ];
    let mut out = format!("{:<13} {:<11} {:>2}", "sha", "date", "sv");
    for (hdr, _) in &cols {
        out.push_str(&format!(" {hdr:>8}"));
    }
    out.push('\n');
    for (schema, rec) in &records {
        let s = |key: &str| match rec.get(key) {
            Some(Json::Str(v)) => v.clone(),
            _ => "?".into(),
        };
        out.push_str(&format!("{:<13} {:<11} {:>2}", s("sha"), s("date"), schema));
        for (_, key) in &cols {
            match rec.get(key).and_then(Json::as_f64) {
                Some(x) => out.push_str(&format!(" {x:>8.2}")),
                None => out.push_str(&format!(" {:>8}", "-")),
            }
        }
        out.push('\n');
    }
    emit(&out);
    note(&format!(
        "{} records from {path}; columns are speedup ratios \
         (ovh-* are instrumented/pre-instrumentation overhead, gate <= 1.02)",
        records.len()
    ));
    Ok(())
}

/// `taskbench variants` — the composed-scheduler design space, one
/// canonical grammar name per line in the deterministic enumeration
/// order, with the six paper presets annotated by their acronym. The
/// output is byte-stable across runs; CI diffs two invocations.
fn cmd_variants(args: &[String]) -> Result<(), String> {
    use taskbench::core::compose;

    if let Some(a) = args.first() {
        return Err(format!("unexpected argument `{a}`"));
    }
    let variants = registry::enumerate();
    let mut text = String::new();
    for v in &variants {
        match compose::PRESETS.iter().find(|&&(_, s)| s == v.spec()) {
            Some(&(acronym, _)) => text.push_str(&format!("{:<68} = {acronym}\n", v.name())),
            None => {
                text.push_str(v.name());
                text.push('\n');
            }
        }
    }
    emit(&text);
    note(&format!(
        "{} composed variants; grammar: {}",
        variants.len(),
        compose::Spec::grammar()
    ));
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let g = load(args.first().ok_or("missing graph file")?)?;
    let s = taskbench::graph::GraphStats::of(&g);
    emit(&format!(
        "graph        {}\n\
         tasks        {}\n\
         edges        {}\n\
         total work   {}\n\
         total comm   {}\n\
         CCR          {:.3}\n\
         depth        {}\n\
         level width  {}\n\
         CP length    {}\n\
         CP work      {}\n\
         entries      {}\n\
         exits        {}\n",
        g.name(),
        s.tasks,
        s.edges,
        s.total_work,
        s.total_comm,
        s.ccr,
        s.depth,
        s.level_width,
        s.cp_length,
        s.cp_computation,
        s.entries,
        s.exits
    ));
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let g = load(args.first().ok_or("missing graph file")?)?;
    emit(&taskbench::graph::io::to_dot(&g));
    Ok(())
}

fn cmd_adversary(args: &[String]) -> Result<(), String> {
    use taskbench::adversary::{archive, matrix, search, Budget, Reference};

    let target_name = args.first().ok_or("missing target algorithm")?;
    let baseline_name = args.get(1).ok_or("missing baseline algorithm")?;
    let target = lookup_algo(target_name)?;
    let against_optimal = baseline_name.eq_ignore_ascii_case("optimal");
    let baseline_algo = if against_optimal {
        None
    } else {
        let b = lookup_algo(baseline_name)?;
        if b.class() != target.class() {
            return Err(format!(
                "target {} is {} but baseline {} is {}; compare within one class \
                 (or against `optimal`)",
                target.name(),
                target.class(),
                b.name(),
                b.class()
            ));
        }
        Some(b)
    };

    // The optimal bound re-solves a branch-and-bound per evaluation, so its
    // defaults are much smaller.
    let mut budget = Budget {
        max_evals: if against_optimal { 60 } else { 400 },
        seed: 0x1998,
        max_nodes: if against_optimal { 20 } else { 60 },
    };
    let mut out: Option<String> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => {
                budget.max_evals = parse(args.get(i + 1), "budget")?;
                i += 2;
            }
            "--seed" => {
                budget.seed = parse(args.get(i + 1), "seed")?;
                i += 2;
            }
            "--max-nodes" => {
                budget.max_nodes = parse(args.get(i + 1), "max-nodes")?;
                i += 2;
            }
            "--out" => {
                out = Some(args.get(i + 1).ok_or("missing output path")?.clone());
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    if budget.max_evals == 0 {
        return Err("budget must be at least 1".into());
    }
    if budget.max_nodes < 8 {
        return Err("max-nodes must be at least 8".into());
    }
    if against_optimal && budget.max_nodes > 64 {
        return Err(format!(
            "the optimal baseline supports at most 64 tasks (branch-and-bound cap); \
             --max-nodes {} is too large",
            budget.max_nodes
        ));
    }
    let reference = match &baseline_algo {
        Some(b) => Reference::Algo(b.as_ref()),
        None => Reference::Optimal {
            node_limit: 300_000,
        },
    };
    let env = matrix::env_for(target.class());
    let r = search::search(target.as_ref(), &reference, &env, &budget);
    emit(&format!(
        "{} vs {}: max ratio {:.4}  ({} vs {})  on {} (v={} e={} ccr={:.2})  \
         [{} evals, seed {}]\n",
        target.name(),
        reference.label(),
        r.ratio(),
        r.target_makespan,
        r.baseline_makespan,
        r.graph.name(),
        r.graph.num_tasks(),
        r.graph.num_edges(),
        r.graph.ccr(),
        r.evals,
        budget.seed,
    ));
    if let Some(path) = out {
        let text = archive::archived_tgf(
            target.class(),
            target.name(),
            &reference.label(),
            budget.seed,
            &r,
        );
        std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?;
        note(&format!("wrote {path}"));
    }
    Ok(())
}

/// `taskbench serve` — run the scheduling daemon. The artifact on stdout
/// is the bound address (one line), so scripts can use an ephemeral port
/// (`--addr 127.0.0.1:0`) and still find the server. Runs until a client
/// sends `shutdown`, then drains in-flight requests and exits.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use taskbench::obs::{global, registry::Metric};
    use taskbench::serve::Config;

    let mut cfg = Config::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                cfg.addr = args.get(i + 1).ok_or("missing address")?.clone();
                i += 2;
            }
            "--workers" => {
                cfg.workers = parse(args.get(i + 1), "workers")?;
                i += 2;
            }
            "--queue-cap" => {
                cfg.queue_cap = parse(args.get(i + 1), "queue-cap")?;
                i += 2;
            }
            "--cache-cap" => {
                cfg.cache_cap = parse(args.get(i + 1), "cache-cap")?;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cfg.queue_cap == 0 {
        return Err("queue-cap must be at least 1".into());
    }
    let handle = taskbench::serve::server::start(cfg).map_err(|e| e.to_string())?;
    emit(&format!("{}\n", handle.addr()));
    // stdout is block-buffered under a pipe; the address must reach the
    // launching script before the daemon parks in `wait()`.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    note("serving; send a `shutdown` request (taskbench loadgen --shutdown) to stop");
    handle.wait();
    let snap = global().snapshot();
    note(&format!(
        "served {} requests ({} errors, {} queue rejects); cache {} hits / {} misses / {} evictions",
        snap.get(Metric::ServeRequests),
        snap.get(Metric::ServeErrors),
        snap.get(Metric::ServeQueueRejects),
        snap.get(Metric::ServeCacheHits),
        snap.get(Metric::ServeCacheMisses),
        snap.get(Metric::ServeCacheEvictions),
    ));
    Ok(())
}

/// The deterministic graph suite `taskbench loadgen` replays: RGNOS
/// graphs across the paper's CCR corners, or small adversarially-searched
/// instances (both seeded — the same seed replays the same suite).
fn loadgen_suite(name: &str, seed: u64) -> Result<Vec<TaskGraph>, String> {
    use taskbench::adversary::{matrix, search, Budget, Reference};
    use taskbench::suites::rgnos;

    match name {
        "rgnos" => Ok([0.1, 1.0, 10.0]
            .iter()
            .flat_map(|&ccr| {
                [seed, seed + 1].map(|s| rgnos::generate(rgnos::RgnosParams::new(40, ccr, 2, s)))
            })
            .collect()),
        "adversarial" => {
            let mut graphs = Vec::new();
            for (target, baseline) in [("MCP", "HLFET"), ("DSC", "EZ"), ("BSA", "MH")] {
                let t = lookup_algo(target)?;
                let b = lookup_algo(baseline)?;
                let budget = Budget {
                    max_evals: 25,
                    seed,
                    max_nodes: 20,
                };
                let env = matrix::env_for(t.class());
                let r = search::search(t.as_ref(), &Reference::Algo(b.as_ref()), &env, &budget);
                graphs.push(r.graph);
            }
            Ok(graphs)
        }
        other => Err(format!("unknown suite `{other}` (rgnos, adversarial)")),
    }
}

/// `taskbench loadgen` — replay a suite against a running daemon. The
/// artifact on stdout is a one-object JSON report; throughput/latency
/// numbers in it are wall-clock and machine-dependent (indicative only,
/// never CI-diffed — CI gates on `errors` and the cache hit count).
fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    use taskbench::serve::loadgen;

    let mut params = loadgen::LoadgenParams::default();
    let mut suite = "rgnos".to_string();
    let mut algos: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                params.addr = args.get(i + 1).ok_or("missing address")?.clone();
                i += 2;
            }
            "--qps" => {
                params.qps = parse(args.get(i + 1), "qps")?;
                i += 2;
            }
            "--conns" => {
                params.conns = parse(args.get(i + 1), "conns")?;
                i += 2;
            }
            "--repeat" => {
                params.repeat = parse(args.get(i + 1), "repeat")?;
                i += 2;
            }
            "--seed" => {
                params.seed = parse(args.get(i + 1), "seed")?;
                i += 2;
            }
            "--algo" => {
                algos.push(args.get(i + 1).ok_or("missing algorithm name")?.clone());
                i += 2;
            }
            "--suite" => {
                suite = args.get(i + 1).ok_or("missing suite name")?.clone();
                i += 2;
            }
            "--verify" => {
                params.verify = true;
                i += 1;
            }
            "--shutdown" => {
                params.shutdown = true;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if params.addr.is_empty() {
        return Err("loadgen needs --addr (the daemon's address)".into());
    }
    if !algos.is_empty() {
        // Validate eagerly so a typo fails before any traffic is sent.
        for a in &algos {
            lookup_algo(a)?;
        }
        params.algos = algos;
    }
    params.graphs = loadgen_suite(&suite, params.seed)?;
    verbose(&format!(
        "replaying {} graphs × {} algos × {} repeats at {} qps over {} conns",
        params.graphs.len(),
        params.algos.len(),
        params.repeat,
        params.qps,
        params.conns
    ));
    let report = loadgen::run(&params)?;
    emit(&format!(
        "{{\"requests\": {}, \"errors\": {}, \"cache_hits\": {}, \
         \"elapsed_s\": {:.3}, \"throughput_rps\": {:.1}, \
         \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}\n",
        report.requests,
        report.errors,
        report.cache_hits,
        report.elapsed.as_secs_f64(),
        report.throughput_rps,
        report.p50_us,
        report.p95_us,
        report.p99_us
    ));
    for e in &report.error_detail {
        note(&format!("error: {e}"));
    }
    if report.errors > 0 {
        return Err(format!(
            "{} of {} requests failed",
            report.errors, report.requests
        ));
    }
    Ok(())
}

fn cmd_lint(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut root: Option<std::path::PathBuf> = None;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(std::path::PathBuf::from(other))
            }
            other => return Err(format!("unknown lint flag `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getcwd: {e}"))?;
            dagsched_lint::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory; pass ROOT")?
        }
    };
    let report = dagsched_lint::lint_tree(&root).map_err(|e| format!("lint walk: {e}"))?;
    if json {
        emit(&dagsched_lint::render_json(&report.diagnostics));
    } else {
        emit(&dagsched_lint::render_text(&report.diagnostics));
    }
    note(&format!(
        "lint: {} files scanned, {} diagnostic{}",
        report.files,
        report.diagnostics.len(),
        if report.diagnostics.len() == 1 {
            ""
        } else {
            "s"
        }
    ));
    if report.clean() {
        Ok(())
    } else {
        Err(format!("{} lint diagnostics", report.diagnostics.len()))
    }
}
