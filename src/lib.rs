#![forbid(unsafe_code)]
//! # taskbench — benchmarking task-graph scheduling algorithms
//!
//! A from-scratch Rust reproduction of **Kwok & Ahmad, "Benchmarking the
//! Task Graph Scheduling Algorithms", IPPS 1998**: the fifteen classic DAG
//! scheduling algorithms (BNP, UNC and APN classes), the five benchmark
//! graph families the paper proposes, the branch-and-bound optimal solver
//! it calibrates against, and a harness that regenerates every table and
//! figure of its evaluation section.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`graph`] — the weighted-DAG task-graph substrate (levels, critical
//!   paths, I/O);
//! * [`platform`] — processors, schedules, timelines, interconnect
//!   topologies and link-level message schedules;
//! * [`core`] — the [`core::Scheduler`] trait and all fifteen algorithms;
//! * [`suites`] — PSG / RGBOS / RGPOS / RGNOS / traced generators;
//! * [`optimal`] — branch-and-bound optimal schedules;
//! * [`metrics`] — NSL, degradation, speedup and reporting tables;
//! * [`adversary`] — adversarial instance search and pairwise dominance
//!   analysis over the roster;
//! * [`obs`] — zero-cost event tracing, hot-path counters and span
//!   profiling (the `taskbench trace` / `taskbench profile` front door);
//! * [`crate::bench`] — the experiment harness behind every table and
//!   figure, plus the perf-baseline machinery;
//! * [`serve`] — scheduling as a service: the framed TCP daemon behind
//!   `taskbench serve` and the `taskbench loadgen` replay client.
//!
//! ## Quickstart
//!
//! ```
//! use taskbench::prelude::*;
//!
//! // A diamond task graph.
//! let mut b = GraphBuilder::new();
//! let n0 = b.add_task(4);
//! let n1 = b.add_task(3);
//! let n2 = b.add_task(5);
//! let n3 = b.add_task(2);
//! b.add_edge(n0, n1, 2).unwrap();
//! b.add_edge(n0, n2, 2).unwrap();
//! b.add_edge(n1, n3, 2).unwrap();
//! b.add_edge(n2, n3, 2).unwrap();
//! let g = b.build().unwrap();
//!
//! // Schedule it with every algorithm in the paper's roster.
//! for algo in registry::all() {
//!     let env = match algo.class() {
//!         AlgoClass::Apn => Env::apn(Topology::ring(4).unwrap()),
//!         _ => Env::bnp(4),
//!     };
//!     let out = algo.schedule(&g, &env).unwrap();
//!     out.validate(&g).unwrap();
//!     assert!(out.schedule.makespan() >= 11); // computation critical path
//! }
//! ```

pub use dagsched_adversary as adversary;
pub use dagsched_bench as bench;
pub use dagsched_core as core;
pub use dagsched_graph as graph;
pub use dagsched_metrics as metrics;
pub use dagsched_obs as obs;
pub use dagsched_optimal as optimal;
pub use dagsched_platform as platform;
pub use dagsched_serve as serve;
pub use dagsched_suites as suites;

/// The names most programs need, in one import.
pub mod prelude {
    pub use dagsched_core::{registry, AlgoClass, Env, Outcome, SchedError, Scheduler};
    pub use dagsched_graph::{levels, GraphBuilder, GraphError, TaskGraph, TaskId};
    pub use dagsched_metrics::{degradation_pct, nsl, speedup, Table};
    pub use dagsched_optimal::{solve, OptimalParams};
    pub use dagsched_platform::{gantt, Network, ProcId, Schedule, Topology};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let mut b = GraphBuilder::new();
        let a = b.add_task(3);
        let c = b.add_task(4);
        b.add_edge(a, c, 1).unwrap();
        let g = b.build().unwrap();
        let out = registry::by_name("DCP")
            .unwrap()
            .schedule(&g, &Env::bnp(1))
            .unwrap();
        assert!(out.validate(&g).is_ok());
        assert_eq!(out.schedule.makespan(), 7);
    }
}
